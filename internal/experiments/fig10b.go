package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig10b",
		Title: "AR rendering time per frame (1/2/3-object scenes)",
		Paper: "Potluck is within ~9.2% of optimal deduplication, ~7× faster than " +
			"native mobile rendering, and ~47% slower than the PC",
		Run: runFig10b,
	})
}

// arScene builds a scene with n spheres (rendering cost grows with n).
func arScene(n int) *render.Scene {
	s := &render.Scene{}
	colors := [][3]float64{{0.9, 0.3, 0.3}, {0.3, 0.9, 0.3}, {0.3, 0.3, 0.9}}
	for i := 0; i < n; i++ {
		s.Objects = append(s.Objects, render.Object{
			Mesh:      render.Sphere(12, 16, colors[i%3]),
			Transform: render.Translate4(render.Vec3{X: float64(i-1) * 1.5, Z: -5}),
		})
	}
	return s
}

// trajectory yields a smooth device-pose path: a user panning the phone.
func trajectory(n int, phase float64) []render.Pose {
	out := make([]render.Pose, n)
	for i := range out {
		t := float64(i)
		out[i] = render.Pose{
			Yaw:   0.02*t + phase,
			Pitch: 0.05 * math.Sin(t*0.11+phase),
			Pos:   render.Vec3{X: 0.01 * t},
		}
	}
	return out
}

// runFig10b reproduces Figure 10(b): per-frame rendering time for scenes
// of one, two, and three objects under Potluck's warp fast path (live
// threshold tuning), versus optimal, PC-native, and mobile-native.
func runFig10b(w io.Writer) error {
	const frames = 120
	rows := make([][]string, 0, 3)
	for objs := 1; objs <= 3; objs++ {
		scene := arScene(objs)
		clk := clock.NewVirtual(time.Unix(0, 0))
		cache := core.New(core.Config{
			Clock: clk,
			Seed:  11,
			Tuner: core.TunerConfig{WarmupZ: 40},
			Equal: apps.RenderEqual(func(a, b any) bool { return a == b }),
		})
		env := apps.NewEnv(cache, clk, workload.Mobile)
		app, err := apps.NewARLocationApp(env, scene, render.NewRenderer(96, 72), "ar-loc", true)
		if err != nil {
			return err
		}
		// Warm phase: the user pans through the scene once; the tuner
		// calibrates the pose threshold from these puts.
		for _, p := range trajectory(frames, 0) {
			if _, err := app.ProcessPose(p); err != nil {
				return err
			}
		}
		// Measurement phase: a similar pass, offset within the warpable
		// radius (revisiting the scene from slightly different angles).
		var total, hitTotal time.Duration
		hits := 0
		meas := trajectory(frames, 0.03)
		for _, p := range meas {
			f, err := app.ProcessPose(p)
			if err != nil {
				return err
			}
			total += f.Elapsed.Duration()
			if f.Hit {
				hits++
				hitTotal += f.Elapsed.Duration()
			}
		}
		potluck := total / frames
		hitPath := time.Duration(0)
		if hits > 0 {
			hitPath = hitTotal / time.Duration(hits)
		}
		nativeMobile := time.Duration(objs) * apps.RenderCostPerObject
		nativePC := workload.PC.CostOn(nativeMobile)
		optimal := apps.OptimalARFrameTime(workload.Mobile).Duration()
		st, _ := cache.TunerStats(apps.RenderFunction, apps.PoseKeyType)
		rows = append(rows, []string{
			fmt.Sprintf("%d obj scene", objs),
			ms(optimal),
			ms(hitPath),
			ms(potluck),
			ms(nativePC),
			ms(nativeMobile),
			fmt.Sprintf("%.0f%%", 100*float64(hits)/frames),
			fmt.Sprintf("%.3f", st.Threshold),
		})
		if objs == 1 {
			fmt.Fprintf(w,
				"1-obj dedup path: %.1fx faster than mobile (paper ~7x), %.0f%% slower than the PC (paper 47%%)\n\n",
				float64(nativeMobile)/float64(hitPath),
				100*(float64(hitPath)-float64(nativePC))/float64(nativePC))
		}
	}
	table(w, []string{"scene", "optimal", "potluck (warp path)", "potluck (mean)", "pc native", "mobile native", "hit rate", "tuned threshold"}, rows)
	return nil
}
