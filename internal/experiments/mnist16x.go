package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/vec"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "mnist16x",
		Title: "Stronger input correlation → larger speedup (MNIST vs CIFAR)",
		Paper: "on MNIST (higher semantic correlation) Potluck cuts recognition " +
			"time ~16× vs the phone, compared to the CIFAR-based multi-app runs " +
			"(2.5–10×): more correlation, more eliminated processing",
		Run: runMNIST16x,
	})
}

// runMNIST16x reproduces the §5.6 MNIST observation: the same recognition
// pipeline achieves a larger speedup on the more strongly correlated
// dataset because more lookups fall within the threshold.
func runMNIST16x(w io.Writer) error {
	type source struct {
		name string
		ds   sampler
		rec  *recognizer
	}
	cds, crec := cifar()
	mds, mrec := mnist()
	sources := []source{{"CIFAR-like", cds, crec}, {"MNIST-like", mds, mrec}}

	const prestore, testN = 500, 100
	rows := make([][]string, 0, 2)
	speedups := make(map[string]float64, 2)
	for _, src := range sources {
		clk := clock.NewVirtual(time.Unix(0, 0))
		cache := core.New(core.Config{
			Clock: clk,
			Seed:  16,
			Tuner: core.TunerConfig{WarmupZ: 100},
		})
		env := apps.NewEnv(cache, clk, workload.Mobile)
		app, err := apps.NewRecognitionApp(env, src.rec.clf, "lens", true)
		if err != nil {
			return err
		}
		classes := 10
		if c, ok := src.ds.(*synth.CIFARLike); ok {
			classes = c.Classes
		}
		for _, e := range drawEntries(src.ds, src.rec, classes, prestore, 100) {
			if _, err := cache.Put(apps.RecognitionFunction, core.PutRequest{
				Keys:  map[string]vec.Vector{apps.RecognitionKeyType: e.key},
				Value: e.truth, // pre-stored with ground-truth labels (§5.5)
				Cost:  apps.RecognitionCost,
				App:   "prestore",
			}); err != nil {
				return err
			}
		}
		test := drawEntries(src.ds, src.rec, classes, testN, 40_000)
		var total time.Duration
		hits := 0
		for _, te := range test {
			res, err := app.ProcessFrame(src.ds.Sample(te.class, te.variant).Image)
			if err != nil {
				return err
			}
			total += res.Elapsed.Duration()
			if res.Hit {
				hits++
			}
		}
		native := apps.DownsampCost + apps.RecognitionCost + apps.FetchInfoCost
		speedup := float64(native) / (float64(total) / testN)
		speedups[src.name] = speedup
		st, _ := cache.TunerStats(apps.RecognitionFunction, apps.RecognitionKeyType)
		rows = append(rows, []string{
			src.name,
			ms(total / testN),
			ms(native),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.0f%%", 100*float64(hits)/testN),
			fmt.Sprintf("%.2f", st.Threshold),
		})
	}
	table(w, []string{"dataset", "potluck", "mobile native", "speedup", "hit rate", "tuned threshold"}, rows)
	fmt.Fprintf(w, "\nshape check (MNIST speedup > CIFAR speedup): %v\n",
		speedups["MNIST-like"] > speedups["CIFAR-like"])
	return nil
}
