package apps

import (
	"testing"
	"time"

	"repro/internal/render"
	"repro/internal/workload"
)

func TestARCVNoCacheBaseline(t *testing.T) {
	c, ds := classifier(t)
	env := newEnv(workload.Mobile)
	arcv, err := NewARCVApp(env, c, nil, render.NewRenderer(32, 24), "ar-cv", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arcv.ProcessFrame(ds.Sample(0, 0).Image, render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecognitionHit || res.RenderHit {
		t.Error("no-cache app reported hits")
	}
	if res.Image == nil {
		t.Error("no frame rendered")
	}
	want := workload.Mobile.CostOn(DownsampCost + RecognitionCost + RenderCostPerObject)
	if res.Elapsed.Duration() != want {
		t.Errorf("native cost = %v, want %v", res.Elapsed.Duration(), want)
	}
}

func TestARCVRenderHitOnRepeat(t *testing.T) {
	c, ds := classifier(t)
	env := newEnv(workload.Mobile)
	arcv, err := NewARCVApp(env, c, nil, render.NewRenderer(32, 24), "ar-cv", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Cache.ForceThreshold(RecognitionFunction, RecognitionKeyType, 5.0); err != nil {
		t.Fatal(err)
	}
	if err := env.Cache.ForceThreshold(RenderFunction, PoseLabelKeyType, 0.5); err != nil {
		t.Fatal(err)
	}
	img := ds.Sample(3, 700).Image
	first, err := arcv.ProcessFrame(img, render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := arcv.ProcessFrame(img, render.Pose{Yaw: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !second.RecognitionHit {
		t.Error("repeat frame missed recognition cache")
	}
	if !second.RenderHit {
		t.Error("nearby pose missed render cache")
	}
	if second.Elapsed >= first.Elapsed {
		t.Errorf("hit frame (%v) not faster than cold frame (%v)",
			second.Elapsed.Duration(), first.Elapsed.Duration())
	}
}

func TestFlashBackEmptySceneAndDefaultQuantum(t *testing.T) {
	env := newEnv(workload.Mobile)
	fb := NewFlashBack(env, &render.Scene{}, render.NewRenderer(16, 12))
	fb.Quantum = 0 // falls back to the default inside quantize
	f, err := fb.RenderPose(render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Hit {
		t.Error("first render hit")
	}
	// Empty scenes still charge one object's cost (the floor).
	if f.Elapsed.Duration() != workload.Mobile.CostOn(RenderCostPerObject) {
		t.Errorf("empty-scene cost = %v", f.Elapsed.Duration())
	}
}

func TestARLocationEmptySceneCostFloor(t *testing.T) {
	env := newEnv(workload.Mobile)
	app, err := NewARLocationApp(env, &render.Scene{}, render.NewRenderer(16, 12), "a", false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := app.ProcessPose(render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Elapsed.Duration() != workload.Mobile.CostOn(RenderCostPerObject) {
		t.Errorf("empty-scene cost = %v", f.Elapsed.Duration())
	}
}

func TestElapsedTimeDuration(t *testing.T) {
	if ElapsedTime(5*time.Second).Duration() != 5*time.Second {
		t.Error("Duration conversion broken")
	}
}

func TestTimerMeasuresVirtualTime(t *testing.T) {
	env := newEnv(workload.Mobile)
	tm := env.StartTimer()
	env.Charge(3 * time.Second)
	if got := tm.Elapsed(); got != 3*time.Second {
		t.Errorf("Elapsed = %v", got)
	}
}
