// Package apps implements the paper's three benchmark applications
// (§5.1) on top of the Potluck cache: a deep-learning image recognition
// app (the Google Lens pipeline of Figure 3), a location-based AR app
// that renders virtual objects for the device pose, and a vision-based
// AR app that recognizes objects in the frame and renders overlays. It
// also provides the emulated FlashBack comparator of §5.6.
//
// Computation costs are charged to a virtual clock using reference
// (mobile) costs calibrated to the paper's measurements, scaled by the
// device profile; the underlying computations (CNN inference, software
// rendering, warping) actually execute so results — and therefore
// accuracy and cache-consistency behaviour — are real.
package apps

import (
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/workload"
)

// Reference costs on the mobile device, calibrated to the paper:
// Table 1 gives key-generation times (Downsamp 5.8 ms, FAST 4.6 ms);
// §5.4 gives the 0.36 ms Binder round trip; Figure 10(a) implies
// ~185 ms per deep-learning inference on the phone and a ~24.8×
// reduction with Potluck; Figure 10(b) implies ~95 ms per object for 3-D
// rendering and a ~7× reduction via warping.
const (
	// RecognitionCost is one AlexNet-style inference on the mobile.
	RecognitionCost = 185 * time.Millisecond
	// DownsampCost is Downsamp key generation (Table 1).
	DownsampCost = 5800 * time.Microsecond
	// FASTCost is FAST key generation (Table 1).
	FASTCost = 4600 * time.Microsecond
	// IPCCost is one Binder-style round trip (§5.4).
	IPCCost = 360 * time.Microsecond
	// RenderCostPerObject is 3-D rendering per scene object.
	RenderCostPerObject = 95 * time.Millisecond
	// WarpCost is the 2-D warp fast path for a cached frame.
	WarpCost = 13 * time.Millisecond
	// FetchInfoCost is the Google Lens "fetch information" stage (a
	// cached-metadata lookup; the paper's completion time measures the
	// recognition path, so this stage is kept small).
	FetchInfoCost = time.Millisecond
)

// Env binds the shared cache, the virtual clock that accounts
// computation time, and the device profile.
type Env struct {
	Cache  *core.Cache
	Clock  *clock.Virtual
	Device workload.Device
}

// NewEnv builds an environment around a fresh virtual clock.
func NewEnv(cache *core.Cache, clk *clock.Virtual, device workload.Device) *Env {
	return &Env{Cache: cache, Clock: clk, Device: device}
}

// Charge advances the virtual clock by the reference cost scaled to this
// device.
func (e *Env) Charge(ref time.Duration) {
	e.Clock.Advance(e.Device.CostOn(ref))
}

// ElapsedTime is a virtual duration in nanoseconds; a distinct type so
// experiment code cannot confuse it with wall time.
type ElapsedTime int64

// Duration converts the virtual elapsed time to a time.Duration.
func (e ElapsedTime) Duration() time.Duration { return time.Duration(e) }

// Timer marks a start instant for elapsed-time measurement.
type Timer struct {
	env   *Env
	start time.Time
}

// StartTimer begins measuring virtual elapsed time.
func (e *Env) StartTimer() Timer { return Timer{env: e, start: e.Clock.Now()} }

// Elapsed returns the virtual time since the timer started.
func (t Timer) Elapsed() time.Duration { return t.env.Clock.Now().Sub(t.start) }
