package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/render"
	"repro/internal/vec"
)

// ARCVApp is the vision-based AR benchmark: it "first runs image
// recognition on the current frame in the camera view, and then renders
// virtual objects overlaid on the detected physical objects" (§5.1). Its
// recognition stage invokes the same RecognitionFunction as the
// recognition app — the cross-application deduplication path — and its
// rendering stage caches overlay renders keyed by pose and label.
type ARCVApp struct {
	Env        *Env
	Classifier *nn.Classifier
	Scene      *render.Scene
	Renderer   *render.Renderer
	UseCache   bool
	App        string

	extractor feature.Extractor
}

// NewARCVApp wires the app and registers both functions it uses.
func NewARCVApp(env *Env, clf *nn.Classifier, scene *render.Scene, r *render.Renderer, appName string, useCache bool) (*ARCVApp, error) {
	ext, err := feature.ByName(RecognitionKeyType)
	if err != nil {
		return nil, err
	}
	if useCache {
		if err := env.Cache.RegisterFunction(RecognitionFunction, core.KeyTypeSpec{
			Name:  RecognitionKeyType,
			Index: "kdtree",
			Dim:   feature.DownsampleDims,
		}); err != nil {
			return nil, fmt.Errorf("apps: register recognition: %w", err)
		}
		if err := env.Cache.RegisterFunction(RenderFunction, core.KeyTypeSpec{
			Name:  PoseLabelKeyType,
			Index: "kdtree",
			Dim:   7,
		}); err != nil {
			return nil, fmt.Errorf("apps: register render: %w", err)
		}
	}
	return &ARCVApp{
		Env: env, Classifier: clf, Scene: scene, Renderer: r,
		UseCache: useCache, App: appName, extractor: ext,
	}, nil
}

// ARCVResult reports one processed frame of the vision-based AR app.
type ARCVResult struct {
	Label          int
	Image          *imaging.RGB
	RecognitionHit bool
	RenderHit      bool
	Elapsed        ElapsedTime
}

// poseLabelKey extends a pose key with the recognized label, scaled so a
// label change dominates any pose similarity (different objects must not
// share overlays).
func poseLabelKey(pose render.Pose, label int) vec.Vector {
	return append(pose.Key(), float64(label)*100)
}

// ProcessFrame runs recognition then overlay rendering for one camera
// frame at the given device pose.
func (a *ARCVApp) ProcessFrame(img *imaging.RGB, pose render.Pose) (ARCVResult, error) {
	t := a.Env.StartTimer()
	out := ARCVResult{}

	// Stage 1: object recognition (shared with RecognitionApp).
	a.Env.Charge(DownsampCost)
	key := a.extractor.Extract(img).Key
	if a.UseCache {
		a.Env.Charge(IPCCost)
		res, err := a.Env.Cache.Lookup(RecognitionFunction, RecognitionKeyType, key)
		if err != nil {
			return out, err
		}
		if res.Hit {
			out.Label = res.Value.(int)
			out.RecognitionHit = true
		} else {
			a.Env.Charge(RecognitionCost)
			out.Label, _ = a.Classifier.Classify(img)
			a.Env.Charge(IPCCost)
			if _, err := a.Env.Cache.Put(RecognitionFunction, core.PutRequest{
				Keys:     map[string]vec.Vector{RecognitionKeyType: key},
				Value:    out.Label,
				MissedAt: res.MissedAt,
				App:      a.App,
			}); err != nil {
				return out, err
			}
		}
	} else {
		a.Env.Charge(RecognitionCost)
		out.Label, _ = a.Classifier.Classify(img)
	}

	// Stage 2: overlay rendering keyed by (pose, label).
	rkey := poseLabelKey(pose, out.Label)
	renderCost := RenderCostPerObject // one overlay object per detection
	if a.UseCache {
		a.Env.Charge(IPCCost)
		res, err := a.Env.Cache.Lookup(RenderFunction, PoseLabelKeyType, rkey)
		if err != nil {
			return out, err
		}
		if res.Hit {
			cached := res.Value.(cachedRender)
			a.Env.Charge(WarpCost)
			out.Image = render.WarpToPose(cached.frame, cached.pose, pose, a.Renderer.FOV)
			out.RenderHit = true
			out.Elapsed = ElapsedTime(t.Elapsed())
			return out, nil
		}
		a.Env.Charge(renderCost)
		frame := a.Renderer.Render(a.overlayScene(out.Label), pose)
		a.Env.Charge(IPCCost)
		if _, err := a.Env.Cache.Put(RenderFunction, core.PutRequest{
			Keys:     map[string]vec.Vector{PoseLabelKeyType: rkey},
			Value:    cachedRender{frame: frame, pose: pose},
			MissedAt: res.MissedAt,
			Size:     3 * 8 * frame.W * frame.H,
			App:      a.App,
		}); err != nil {
			return out, err
		}
		out.Image = frame
		out.Elapsed = ElapsedTime(t.Elapsed())
		return out, nil
	}
	a.Env.Charge(renderCost)
	out.Image = a.Renderer.Render(a.overlayScene(out.Label), pose)
	out.Elapsed = ElapsedTime(t.Elapsed())
	return out, nil
}

// overlayScene picks the overlay for a recognized label: a single object
// whose color identifies the class.
func (a *ARCVApp) overlayScene(label int) *render.Scene {
	if a.Scene != nil {
		return a.Scene
	}
	hue := float64(label) / 10
	color := [3]float64{0.4 + 0.6*hue, 0.5, 1 - 0.6*hue}
	return &render.Scene{Objects: []render.Object{{
		Mesh:      render.Pyramid(color),
		Transform: render.Translate4(render.Vec3{X: 0, Y: -0.5, Z: -4}),
	}}}
}
