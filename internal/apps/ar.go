package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/imaging"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/workload"
)

// RenderFunction is the shared 3-D rendering function name. Both AR
// applications invoke it (IKEA Place and indoor navigation "both require
// 3D graphic rendering ... the rendering logic would be essentially the
// same", §2.3).
const RenderFunction = "render3d"

// Pose-derived key types for the render function.
const (
	// PoseKeyType keys rendered frames by device orientation + location
	// (the location-based AR app, §5.5).
	PoseKeyType = "pose"
	// PoseLabelKeyType extends the pose with the recognized object
	// label (the vision-based AR app overlays on detected objects).
	PoseLabelKeyType = "poselabel"
)

// ARFrame reports one processed AR frame.
type ARFrame struct {
	Image *imaging.RGB
	// Hit is true when the frame was produced by warping a cached
	// render instead of re-rendering.
	Hit     bool
	Elapsed ElapsedTime
}

// ARLocationApp is the location-based AR benchmark: it "uses the current
// 3D orientation of the device and its location to render virtual
// objects" (§5.1). With Potluck, a cached frame at a similar pose is
// warped to the current pose instead of re-rendered (§5.5).
type ARLocationApp struct {
	Env      *Env
	Scene    *render.Scene
	Renderer *render.Renderer
	UseCache bool
	App      string
}

// NewARLocationApp wires the app and registers the render function's
// pose key type.
func NewARLocationApp(env *Env, scene *render.Scene, r *render.Renderer, appName string, useCache bool) (*ARLocationApp, error) {
	if useCache {
		err := env.Cache.RegisterFunction(RenderFunction, core.KeyTypeSpec{
			Name:  PoseKeyType,
			Index: "kdtree",
			Dim:   6,
		})
		if err != nil {
			return nil, fmt.Errorf("apps: register render: %w", err)
		}
	}
	return &ARLocationApp{Env: env, Scene: scene, Renderer: r, UseCache: useCache, App: appName}, nil
}

// renderCost is the reference cost of a full render of the scene.
func (a *ARLocationApp) renderCost() time.Duration {
	objs := len(a.Scene.Objects)
	if objs == 0 {
		objs = 1
	}
	return time.Duration(objs) * RenderCostPerObject
}

// ProcessPose produces the frame for a device pose.
func (a *ARLocationApp) ProcessPose(pose render.Pose) (ARFrame, error) {
	t := a.Env.StartTimer()
	// Pose key generation is trivial (sensor values), but motion
	// estimation for the camera-tracked variant uses FAST (§5.2); charge
	// the cheap sensor path here.
	key := pose.Key()

	if a.UseCache {
		a.Env.Charge(IPCCost)
		res, err := a.Env.Cache.Lookup(RenderFunction, PoseKeyType, key)
		if err != nil {
			return ARFrame{}, err
		}
		if res.Hit {
			cached := res.Value.(cachedRender)
			a.Env.Charge(WarpCost)
			warped := render.WarpToPose(cached.frame, cached.pose, pose, a.Renderer.FOV)
			return ARFrame{Image: warped, Hit: true, Elapsed: ElapsedTime(t.Elapsed())}, nil
		}
		frame := a.renderFull(pose)
		a.Env.Charge(IPCCost)
		_, err = a.Env.Cache.Put(RenderFunction, core.PutRequest{
			Keys:     map[string]vec.Vector{PoseKeyType: key},
			Value:    cachedRender{frame: frame, pose: pose},
			MissedAt: res.MissedAt,
			Size:     3 * 8 * frame.W * frame.H,
			App:      a.App,
		})
		if err != nil {
			return ARFrame{}, err
		}
		return ARFrame{Image: frame, Elapsed: ElapsedTime(t.Elapsed())}, nil
	}
	frame := a.renderFull(pose)
	return ARFrame{Image: frame, Elapsed: ElapsedTime(t.Elapsed())}, nil
}

func (a *ARLocationApp) renderFull(pose render.Pose) *imaging.RGB {
	a.Env.Charge(a.renderCost())
	return a.Renderer.Render(a.Scene, pose)
}

// cachedRender stores a rendered frame with the pose it was rendered at,
// so hits can estimate the warp transform.
type cachedRender struct {
	frame *imaging.RGB
	pose  render.Pose
}

// WarpableRadius is the pose distance within which a cached render,
// after warping, is visually indistinguishable from a fresh render
// ("there is no need to render a new scene if it is visually
// indistinguishable ... from a previous one", §2.2). It defines result
// equality for the threshold tuner: the tuner then converges the
// similarity threshold toward the radius the warp can actually cover.
const WarpableRadius = 0.15

// renderValuesEqual compares cached render results for the threshold
// tuner: two renders are "the same result" when their poses are within
// the warpable radius, i.e. either frame warps to the other without
// visible error.
func renderValuesEqual(a, b any) bool {
	ca, okA := a.(cachedRender)
	cb, okB := b.(cachedRender)
	if !okA || !okB {
		return false
	}
	d := vec.EuclideanMetric{}.Distance(ca.pose.Key(), cb.pose.Key())
	return d < WarpableRadius
}

// RenderEqual is the Config.Equal function to install on caches serving
// AR render entries; it falls back to reflect-style equality for other
// value types via the default path in core.
func RenderEqual(fallback func(a, b any) bool) func(a, b any) bool {
	return func(a, b any) bool {
		if _, ok := a.(cachedRender); ok {
			return renderValuesEqual(a, b)
		}
		return fallback(a, b)
	}
}

// OptimalARFrameTime is the per-pose completion time under optimal
// deduplication: the IPC hop plus the warp.
func OptimalARFrameTime(device workload.Device) ElapsedTime {
	return ElapsedTime(device.CostOn(IPCCost) + device.CostOn(WarpCost))
}
