package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/imaging"
	"repro/internal/render"
)

// FlashBack emulates the comparator system of §5.6 (paper citation
// [14]): a pre-rendering memoization scheme for VR. Its benefit "only
// extends to in-app result reuse for only the rendering portion" — it
// never shares across applications and does nothing for the recognition
// stage. The emulation quantizes the pose and memoizes rendered frames
// per application, matching "precomputing all possible input
// combinations and simply looking up the corresponding results".
type FlashBack struct {
	Env      *Env
	Scene    *render.Scene
	Renderer *render.Renderer
	// Quantum is the pose-quantization step (radians / units); poses in
	// the same cell reuse the same pre-rendered frame. Default 0.1.
	Quantum float64

	memo map[string]*imaging.RGB
}

// NewFlashBack returns an emulated FlashBack renderer.
func NewFlashBack(env *Env, scene *render.Scene, r *render.Renderer) *FlashBack {
	return &FlashBack{Env: env, Scene: scene, Renderer: r, Quantum: 0.1, memo: make(map[string]*imaging.RGB)}
}

// quantize maps a pose to its grid cell.
func (f *FlashBack) quantize(p render.Pose) string {
	q := f.Quantum
	if q <= 0 {
		q = 0.1
	}
	cell := func(v float64) int { return int(math.Round(v / q)) }
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d",
		cell(p.Yaw), cell(p.Pitch), cell(p.Roll),
		cell(p.Pos.X), cell(p.Pos.Y), cell(p.Pos.Z))
}

// RenderPose returns the frame for a pose, reusing the pre-rendered
// frame of the pose's quantization cell when present.
func (f *FlashBack) RenderPose(pose render.Pose) (ARFrame, error) {
	t := f.Env.StartTimer()
	key := f.quantize(pose)
	if frame, ok := f.memo[key]; ok {
		// An in-app memory lookup: no IPC hop, just the (cheap) fetch
		// and the display-adjust warp FlashBack performs.
		f.Env.Charge(WarpCost)
		return ARFrame{Image: frame, Hit: true, Elapsed: ElapsedTime(t.Elapsed())}, nil
	}
	objs := len(f.Scene.Objects)
	if objs == 0 {
		objs = 1
	}
	f.Env.Charge(time.Duration(objs) * RenderCostPerObject)
	frame := f.Renderer.Render(f.Scene, pose)
	f.memo[key] = frame
	return ARFrame{Image: frame, Elapsed: ElapsedTime(t.Elapsed())}, nil
}

// Len reports the number of memoized cells.
func (f *FlashBack) Len() int { return len(f.memo) }
