package apps

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/workload"
)

// sharedClassifier is trained once for the whole package's tests;
// training runs ~100 CNN inferences.
var (
	clfOnce sync.Once
	clf     *nn.Classifier
	ds      *synth.CIFARLike
)

func classifier(t *testing.T) (*nn.Classifier, *synth.CIFARLike) {
	t.Helper()
	clfOnce.Do(func() {
		ds = synth.NewCIFARLike(11)
		var err error
		clf, err = TrainDefaultClassifier(ds, 6, 5)
		if err != nil {
			t.Fatalf("training classifier: %v", err)
		}
	})
	return clf, ds
}

func newEnv(device workload.Device) *Env {
	clk := clock.NewVirtual(time.Unix(0, 0))
	cache := core.New(core.Config{
		Clock:          clk,
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
		Equal:          RenderEqual(func(a, b any) bool { return a == b }),
	})
	return NewEnv(cache, clk, device)
}

func TestChargeScalesByDevice(t *testing.T) {
	env := newEnv(workload.PC)
	before := env.Clock.Now()
	env.Charge(time.Second)
	if got := env.Clock.Now().Sub(before); got != 100*time.Millisecond {
		t.Errorf("PC charge = %v, want 100ms", got)
	}
}

func TestRecognitionAppCachesAcrossSimilarFrames(t *testing.T) {
	c, ds := classifier(t)
	env := newEnv(workload.Mobile)
	app, err := NewRecognitionApp(env, c, "lens", true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the threshold so variants of the same class hit.
	if err := env.Cache.ForceThreshold(RecognitionFunction, RecognitionKeyType, 5.0); err != nil {
		t.Fatal(err)
	}
	first, err := app.ProcessFrame(ds.Sample(0, 200).Image)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Fatal("first frame hit an empty cache")
	}
	second, err := app.ProcessFrame(ds.Sample(0, 201).Image)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Fatal("similar frame missed; threshold too tight for the dataset")
	}
	if second.Label != first.Label {
		t.Errorf("labels differ across hit: %d vs %d", first.Label, second.Label)
	}
	if second.Elapsed >= first.Elapsed {
		t.Errorf("hit (%v) not faster than miss (%v)",
			second.Elapsed.Duration(), first.Elapsed.Duration())
	}
	// The speedup should be roughly RecognitionCost / overhead — an
	// order of magnitude at least.
	if ratio := float64(first.Elapsed) / float64(second.Elapsed); ratio < 5 {
		t.Errorf("speedup = %.1fx, want ≥ 5x", ratio)
	}
}

func TestRecognitionAppNoCacheBaseline(t *testing.T) {
	c, ds := classifier(t)
	env := newEnv(workload.Mobile)
	app, err := NewRecognitionApp(env, c, "lens", false)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := app.ProcessFrame(ds.Sample(1, 0).Image)
	r2, _ := app.ProcessFrame(ds.Sample(1, 1).Image)
	if r1.Hit || r2.Hit {
		t.Error("no-cache app reported hits")
	}
	if r1.Elapsed != r2.Elapsed {
		t.Errorf("native frames differ in cost: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	want := workload.Mobile.CostOn(DownsampCost + RecognitionCost + FetchInfoCost)
	if r1.Elapsed.Duration() != want {
		t.Errorf("native cost = %v, want %v", r1.Elapsed.Duration(), want)
	}
}

func TestOptimalFrameTime(t *testing.T) {
	opt := OptimalFrameTime(workload.Mobile)
	native := DownsampCost + RecognitionCost + FetchInfoCost
	if opt.Duration() >= native/10 {
		t.Errorf("optimal %v not ≪ native %v", opt.Duration(), native)
	}
	if pc := OptimalFrameTime(workload.PC); pc >= opt {
		t.Errorf("PC optimal %v not faster than mobile %v", pc, opt)
	}
}

func oneCubeScene() *render.Scene {
	return &render.Scene{Objects: []render.Object{{
		Mesh:      render.Cube([3]float64{1, 0.3, 0.3}),
		Transform: render.Translate4(render.Vec3{Z: -5}),
	}}}
}

func TestARLocationAppWarpFastPath(t *testing.T) {
	env := newEnv(workload.Mobile)
	app, err := NewARLocationApp(env, oneCubeScene(), render.NewRenderer(64, 48), "ar-loc", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Cache.ForceThreshold(RenderFunction, PoseKeyType, 0.3); err != nil {
		t.Fatal(err)
	}
	p0 := render.Pose{}
	f0, err := app.ProcessPose(p0)
	if err != nil {
		t.Fatal(err)
	}
	if f0.Hit || f0.Image == nil {
		t.Fatalf("first pose: %+v", f0)
	}
	p1 := render.Pose{Yaw: 0.05}
	f1, err := app.ProcessPose(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Hit {
		t.Fatal("nearby pose missed")
	}
	if f1.Elapsed >= f0.Elapsed {
		t.Errorf("warp (%v) not faster than render (%v)", f1.Elapsed.Duration(), f0.Elapsed.Duration())
	}
	// ~7x reduction per the paper.
	if ratio := float64(f0.Elapsed) / float64(f1.Elapsed); ratio < 3 {
		t.Errorf("AR speedup = %.1fx, want ≥ 3x", ratio)
	}
}

func TestARLocationRenderCostScalesWithObjects(t *testing.T) {
	scene3 := &render.Scene{Objects: []render.Object{
		{Mesh: render.Cube([3]float64{1, 0, 0}), Transform: render.Translate4(render.Vec3{X: -1, Z: -5})},
		{Mesh: render.Cube([3]float64{0, 1, 0}), Transform: render.Translate4(render.Vec3{Z: -5})},
		{Mesh: render.Cube([3]float64{0, 0, 1}), Transform: render.Translate4(render.Vec3{X: 1, Z: -5})},
	}}
	env1 := newEnv(workload.Mobile)
	app1, _ := NewARLocationApp(env1, oneCubeScene(), render.NewRenderer(32, 24), "a", false)
	env3 := newEnv(workload.Mobile)
	app3, _ := NewARLocationApp(env3, scene3, render.NewRenderer(32, 24), "a", false)
	f1, _ := app1.ProcessPose(render.Pose{})
	f3, _ := app3.ProcessPose(render.Pose{})
	if f3.Elapsed != 3*f1.Elapsed {
		t.Errorf("3-object cost %v != 3 × 1-object cost %v", f3.Elapsed, f1.Elapsed)
	}
}

func TestARCVSharesRecognitionWithRecognitionApp(t *testing.T) {
	c, ds := classifier(t)
	env := newEnv(workload.Mobile)
	lens, err := NewRecognitionApp(env, c, "lens", true)
	if err != nil {
		t.Fatal(err)
	}
	arcv, err := NewARCVApp(env, c, nil, render.NewRenderer(32, 24), "ar-cv", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Cache.ForceThreshold(RecognitionFunction, RecognitionKeyType, 5.0); err != nil {
		t.Fatal(err)
	}
	// The lens app populates the recognition cache...
	if _, err := lens.ProcessFrame(ds.Sample(2, 300).Image); err != nil {
		t.Fatal(err)
	}
	// ...and the AR app's recognition stage hits it (cross-app dedup).
	res, err := arcv.ProcessFrame(ds.Sample(2, 301).Image, render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RecognitionHit {
		t.Error("AR-CV recognition stage missed the lens app's cached result")
	}
	if res.Image == nil {
		t.Error("no overlay rendered")
	}
}

func TestARCVRenderKeyedByLabel(t *testing.T) {
	// Different labels at the same pose must not share overlays: their
	// keys are ≥ 100 apart.
	k1 := poseLabelKey(render.Pose{}, 1)
	k2 := poseLabelKey(render.Pose{}, 2)
	var dist float64
	for i := range k1 {
		d := k1[i] - k2[i]
		dist += d * d
	}
	if dist < 100*100 {
		t.Errorf("pose-label keys too close: %v", dist)
	}
}

func TestFlashBackInAppOnly(t *testing.T) {
	env := newEnv(workload.Mobile)
	fb := NewFlashBack(env, oneCubeScene(), render.NewRenderer(32, 24))
	f0, err := fb.RenderPose(render.Pose{})
	if err != nil {
		t.Fatal(err)
	}
	if f0.Hit {
		t.Fatal("first render hit")
	}
	// Same quantization cell: hit.
	f1, err := fb.RenderPose(render.Pose{Yaw: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Hit {
		t.Error("same-cell pose missed")
	}
	// Distant pose: miss (FlashBack has no approximate matching beyond
	// its quantization grid).
	f2, err := fb.RenderPose(render.Pose{Yaw: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Hit {
		t.Error("distant pose hit")
	}
	if fb.Len() != 2 {
		t.Errorf("memo cells = %d, want 2", fb.Len())
	}
}

func TestRenderEqual(t *testing.T) {
	r := render.NewRenderer(32, 24)
	scene := oneCubeScene()
	a := cachedRender{frame: r.Render(scene, render.Pose{}), pose: render.Pose{}}
	b := cachedRender{frame: r.Render(scene, render.Pose{}), pose: render.Pose{}}
	far := cachedRender{frame: r.Render(scene, render.Pose{Yaw: 1}), pose: render.Pose{Yaw: 1}}
	eq := RenderEqual(func(x, y any) bool { return x == y })
	if !eq(a, b) {
		t.Error("identical renders not equal")
	}
	if eq(a, far) {
		t.Error("distinct renders equal")
	}
	if !eq(1, 1) || eq(1, 2) {
		t.Error("fallback equality broken")
	}
	if eq(a, 5) {
		t.Error("mixed types equal")
	}
}
