package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/vec"
	"repro/internal/workload"
)

// RecognitionFunction is the shared object-recognition function name.
// Both the recognition app and the vision-based AR app invoke it, which
// is what makes their results deduplicable across applications ("AR
// applications can share essential recognition functions with image
// recognition apps", §2.3).
const RecognitionFunction = "objectRecognition"

// RecognitionKeyType is the key type used for recognition lookups: the
// down-sampled raw image, the paper's choice "for the deep learning
// based image recognition app" (§5.2).
const RecognitionKeyType = "downsamp"

// FrameResult reports one processed frame.
type FrameResult struct {
	Label int
	// Hit is true when the result came from the cache.
	Hit bool
	// Elapsed is the virtual completion time of the frame.
	Elapsed ElapsedTime
}

// RecognitionApp is the deep-learning image recognition benchmark: it
// "includes pre-trained models and performs deep-learning based
// inference using the AlexNet neural network" (§5.1), with Potluck
// deduplication in front when UseCache is set.
type RecognitionApp struct {
	Env *Env
	// Classifier is the expensive recognizer invoked on cache misses.
	Classifier *nn.Classifier
	// UseCache disables deduplication when false (the "without Potluck"
	// baselines).
	UseCache bool
	// App is the application name attached to cache entries.
	App string

	extractor feature.Extractor
}

// NewRecognitionApp wires a recognition app to the environment and
// registers its function and key type.
func NewRecognitionApp(env *Env, clf *nn.Classifier, appName string, useCache bool) (*RecognitionApp, error) {
	ext, err := feature.ByName(RecognitionKeyType)
	if err != nil {
		return nil, err
	}
	if useCache {
		err := env.Cache.RegisterFunction(RecognitionFunction, core.KeyTypeSpec{
			Name:  RecognitionKeyType,
			Index: "kdtree",
			Dim:   feature.DownsampleDims,
		})
		if err != nil {
			return nil, fmt.Errorf("apps: register recognition: %w", err)
		}
	}
	return &RecognitionApp{
		Env: env, Classifier: clf, UseCache: useCache, App: appName,
		extractor: ext,
	}, nil
}

// ProcessFrame runs the Figure 3 Google Lens pipeline on one frame:
// key generation, cache lookup, recognition on miss, and the
// fetch-information stage.
func (a *RecognitionApp) ProcessFrame(img *imaging.RGB) (FrameResult, error) {
	t := a.Env.StartTimer()
	// Key generation always runs: fuzzy matching needs the actual input.
	a.Env.Charge(DownsampCost)
	key := a.extractor.Extract(img).Key

	if a.UseCache {
		a.Env.Charge(IPCCost)
		res, err := a.Env.Cache.Lookup(RecognitionFunction, RecognitionKeyType, key)
		if err != nil {
			return FrameResult{}, err
		}
		if res.Hit {
			a.Env.Charge(FetchInfoCost)
			return FrameResult{Label: res.Value.(int), Hit: true, Elapsed: ElapsedTime(t.Elapsed())}, nil
		}
		label := a.recognize(img)
		a.Env.Charge(IPCCost)
		_, err = a.Env.Cache.Put(RecognitionFunction, core.PutRequest{
			Keys:     map[string]vec.Vector{RecognitionKeyType: key},
			Value:    label,
			MissedAt: res.MissedAt,
			App:      a.App,
		})
		if err != nil {
			return FrameResult{}, err
		}
		a.Env.Charge(FetchInfoCost)
		return FrameResult{Label: label, Elapsed: ElapsedTime(t.Elapsed())}, nil
	}

	label := a.recognize(img)
	a.Env.Charge(FetchInfoCost)
	return FrameResult{Label: label, Elapsed: ElapsedTime(t.Elapsed())}, nil
}

// recognize charges the inference cost and actually classifies.
func (a *RecognitionApp) recognize(img *imaging.RGB) int {
	a.Env.Charge(RecognitionCost)
	label, _ := a.Classifier.Classify(img)
	return label
}

// TrainDefaultClassifier builds the benchmark classifier over a
// CIFAR-like generator: nPerClass training variants per class.
func TrainDefaultClassifier(ds *synth.CIFARLike, nPerClass int, seed int64) (*nn.Classifier, error) {
	var imgs []*imaging.RGB
	var labels []int
	for c := 0; c < ds.Classes; c++ {
		for v := 0; v < nPerClass; v++ {
			s := ds.Sample(c, v)
			imgs = append(imgs, s.Image)
			labels = append(labels, s.Label)
		}
	}
	return nn.Train(nn.NewTinyAlexNet(seed), imgs, labels, ds.Classes)
}

// OptimalFrameTime is the per-frame completion time under the paper's
// "optimal deduplication" (§5.5): every lookup hits with the right
// result, so only key generation, the IPC hop, and the fetch stage
// remain.
func OptimalFrameTime(device workload.Device) ElapsedTime {
	return ElapsedTime(device.CostOn(DownsampCost) + device.CostOn(IPCCost) + device.CostOn(FetchInfoCost))
}
