package store

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vec"
)

// annOptions sizes training thresholds below the workload so IVF cells
// and PQ codebooks train before the crash — recovery must rebuild the
// TRAINED structures, not fall back to the exact pre-training regime.
func annOptions() index.Options {
	return index.Options{
		IVF: index.IVFConfig{TrainAfter: 256},
		PQ:  index.PQConfig{TrainSize: 128, KeepRecent: 64},
	}
}

func newANNCache(s core.Store, kind index.Kind, at time.Time) (*core.Cache, *clock.Virtual) {
	clk := clock.NewVirtual(at)
	c := core.New(core.Config{
		Clock:          clk,
		Store:          s,
		DisableDropout: true,
		// Warm-up never completes, pinning the threshold at zero (exact
		// match only) on both sides of the crash: hit/miss outcomes then
		// depend only on the rebuilt index, not on tuner history (which
		// a pure log replay legitimately does not carry).
		Tuner:        core.TunerConfig{WarmupZ: 1 << 30},
		IndexOptions: annOptions(),
	})
	if err := c.RegisterFunction("f", core.KeyTypeSpec{Name: "feat", Index: kind, Dim: 8}); err != nil {
		panic(err)
	}
	return c, clk
}

// annKeys generates the seeded put-only workload: for such a log, replay
// order (entries sorted by ID) equals the original admission order, so
// seeded index construction rebuilds the identical structure.
func annKeys(n int) []vec.Vector {
	rng := rand.New(rand.NewSource(83))
	keys := make([]vec.Vector, n)
	for i := range keys {
		v := make(vec.Vector, 8)
		for d := range v {
			v[d] = rng.NormFloat64() * 20
		}
		keys[i] = v
	}
	return keys
}

// TestANNKindsCrashRecovery: register a function over each sub-linear
// index kind, run a put-only workload past the training thresholds,
// crash (abandon the log un-Closed; FsyncAlways makes every record
// durable), recover via the segment-log path, and require the rebuilt
// index to answer identically: every stored key is found exactly with
// its own value, and two independent recoveries agree with each other
// probe-for-probe. No graph or codebook is serialized — determinism
// comes from seeded construction plus ID-ordered replay.
func TestANNKindsCrashRecovery(t *testing.T) {
	const n = 600
	for _, kind := range []index.Kind{index.KindHNSW, index.KindIVF, index.KindHNSWPQ, index.KindIVFPQ} {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			l := openTest(t, dir)
			c, _ := newANNCache(l, kind, time.Unix(0, 0))
			keys := annKeys(n)
			for i, k := range keys {
				if _, err := c.Put("f", core.PutRequest{
					Keys:  map[string]vec.Vector{"feat": k},
					Value: fmt.Sprintf("v%d", i),
					Size:  64, TTL: time.Hour,
				}); err != nil {
					t.Fatal(err)
				}
			}
			preStats := probeAll(t, c, keys)

			// Crash: abandon l without Close, recover into a fresh cache.
			l2 := openTest(t, dir)
			state, rstats, err := l2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rstats.Entries != n {
				t.Fatalf("recovered %d entries, want %d", rstats.Entries, n)
			}
			c2, _ := newANNCache(l2, kind, time.Unix(0, 0).Add(time.Minute))
			if _, err := c2.Restore(state); err != nil {
				t.Fatal(err)
			}
			postStats := probeAll(t, c2, keys)
			if preStats != postStats {
				t.Fatalf("rebuilt index answers differ from pre-crash:\n got %+v\nwant %+v", postStats, preStats)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}

			// A second independent recovery must agree probe-for-probe —
			// the determinism contract behind skipping graph snapshots.
			l3 := openTest(t, dir)
			state3, _, err := l3.Recover()
			if err != nil {
				t.Fatal(err)
			}
			c3, _ := newANNCache(l3, kind, time.Unix(0, 0).Add(time.Minute))
			if _, err := c3.Restore(state3); err != nil {
				t.Fatal(err)
			}
			if again := probeAll(t, c3, keys); again != postStats {
				t.Fatalf("two recoveries disagree:\n got %+v\nwant %+v", again, postStats)
			}
			if err := l3.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// probeResult summarizes a fixed probe workload so index states can be
// compared across a crash.
type probeResult struct {
	hits      int
	valueSum  int
	missCount int
}

// probeAll looks up every stored key exactly (threshold zero: a hit
// requires the index to surface the key's own entry at distance 0) plus
// a band of perturbed queries that must miss under the zero threshold.
func probeAll(t *testing.T, c *core.Cache, keys []vec.Vector) probeResult {
	t.Helper()
	var pr probeResult
	for i, k := range keys {
		res, err := c.Lookup("f", "feat", k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit {
			pr.hits++
			if res.Value == fmt.Sprintf("v%d", i) {
				pr.valueSum += i
			}
		}
	}
	if pr.hits != len(keys) {
		t.Fatalf("only %d/%d exact keys were found by the index", pr.hits, len(keys))
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		k := keys[rng.Intn(len(keys))].Clone()
		for d := range k {
			k[d] += rng.NormFloat64()
		}
		res, err := c.Lookup("f", "feat", k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit {
			pr.missCount++
		}
	}
	return pr
}
