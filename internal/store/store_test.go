package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// newCache returns a deterministic cache on a virtual clock wired to the
// given store (nil for none).
func newCache(s core.Store, at time.Time) (*core.Cache, *clock.Virtual) {
	clk := clock.NewVirtual(at)
	c := core.New(core.Config{
		Clock:          clk,
		Store:          s,
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	return c, clk
}

func register(t *testing.T, c *core.Cache) {
	t.Helper()
	if err := c.RegisterFunction("f", core.KeyTypeSpec{Name: "scalar"}); err != nil {
		t.Fatal(err)
	}
}

func put(t *testing.T, c *core.Cache, k float64, v any) core.ID {
	t.Helper()
	id, err := c.Put("f", core.PutRequest{
		Keys:  map[string]vec.Vector{"scalar": {k}},
		Value: v, Cost: time.Millisecond, Size: 64, TTL: time.Hour, App: "app",
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// openTest opens a log in dir with always-fsync (every append durable,
// so "crash" == abandon the log without Close) and a small segment size
// to exercise rolling.
func openTest(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// recoverInto replays dir into a fresh cache booted at the given time.
func recoverInto(t *testing.T, dir string, at time.Time) (*core.Cache, *Log, RecoveryStats) {
	t.Helper()
	l := openTest(t, dir)
	state, rstats, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newCache(l, at)
	if _, err := c.Restore(state); err != nil {
		t.Fatal(err)
	}
	return c, l, rstats
}

func wantHit(t *testing.T, c *core.Cache, k float64, v any) {
	t.Helper()
	res, err := c.Lookup("f", "scalar", vec.Vector{k})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Value != v {
		t.Fatalf("key %v: hit=%v value=%v, want %v", k, res.Hit, res.Value, v)
	}
}

func wantMiss(t *testing.T, c *core.Cache, k float64) {
	t.Helper()
	if res, _ := c.Lookup("f", "scalar", vec.Vector{k}); res.Hit {
		t.Fatalf("key %v: unexpected hit (%v)", k, res.Value)
	}
}

func TestLogReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)

	const n = 200 // enough appends to roll segments at 4 KiB
	for i := 0; i < n; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	if _, err := c.InvalidateRadius("f", "scalar", vec.Vector{7}, 0.1); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments < 2 {
		t.Fatalf("segments = %d, want rolling at small SegmentBytes", s.Segments)
	}
	// Crash: abandon l without Close. FsyncAlways means every record is
	// already flushed.
	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if !rstats.TornTail && rstats.SnapshotUsed {
		t.Fatalf("unexpected recovery shape: %+v", rstats)
	}
	if rstats.Entries != n-1 {
		t.Fatalf("recovered %d entries, want %d", rstats.Entries, n-1)
	}
	for i := 0; i < n; i++ {
		if i == 7 {
			wantMiss(t, c2, 7)
			continue
		}
		wantHit(t, c2, float64(i), fmt.Sprintf("v%d", i))
	}
}

func TestSnapshotPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < 150; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	preSnap := c.CaptureState()
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}
	// Tail activity after the snapshot.
	for i := 150; i < 170; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	if _, err := c.InvalidateRadius("f", "scalar", vec.Vector{3}, 0.1); err != nil {
		t.Fatal(err)
	}

	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if !rstats.SnapshotUsed {
		t.Fatalf("snapshot not used: %+v", rstats)
	}
	if rstats.Entries != 169 {
		t.Fatalf("recovered %d entries, want 169", rstats.Entries)
	}
	for i := 0; i < 170; i++ {
		if i == 3 {
			wantMiss(t, c2, 3)
			continue
		}
		wantHit(t, c2, float64(i), fmt.Sprintf("v%d", i))
	}
	// Tuner state restored exactly as snapshotted (tail had no
	// re-registration, so the snapshot's tuner is authoritative).
	got := c2.CaptureState().Functions[0].KeyTypes[0].Tuner
	want := preSnap.Functions[0].KeyTypes[0].Tuner
	if got.Threshold != want.Threshold || got.Active != want.Active {
		t.Errorf("tuner after recovery = %+v, want %+v", got, want)
	}
}

func TestSnapshotCompactsOldFiles(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < 200; i++ {
		put(t, c, float64(i), i)
	}
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(c); err != nil { // second cycle retires the first snapshot too
		t.Fatal(err)
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Errorf("snapshots on disk = %d, want 1 after compaction", len(snaps))
	}
	for _, seq := range segs {
		if seq < snaps[0] {
			t.Errorf("segment %d predates snapshot %d — compaction missed it", seq, snaps[0])
		}
	}
	if s := l.Stats(); s.CompactedSegs == 0 {
		t.Error("no segments compacted")
	}
}

func TestRecoveryDropsEntriesExpiredWhileDown(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	if _, err := c.Put("f", core.PutRequest{
		Keys: map[string]vec.Vector{"scalar": {1}}, Value: "short", TTL: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	put(t, c, 2, "long") // one-hour TTL

	// The process is down for five minutes; the one-minute entry's
	// absolute deadline passes in the interim.
	c2, _, _ := recoverInto(t, dir, time.Unix(0, 0).Add(5*time.Minute))
	wantMiss(t, c2, 1)
	wantHit(t, c2, 2, "long")
}

func TestLogSkipsUnpersistableValues(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	if _, err := c.Put("f", core.PutRequest{
		Keys: map[string]vec.Vector{"scalar": {1}}, Value: make(chan int),
	}); err != nil {
		t.Fatal(err)
	}
	put(t, c, 2, "ok")
	if s := l.Stats(); s.SkippedValues != 1 {
		t.Errorf("skipped values = %d, want 1", s.SkippedValues)
	}
	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if rstats.Entries != 1 {
		t.Errorf("recovered %d entries, want 1", rstats.Entries)
	}
	wantHit(t, c2, 2, "ok")
}

func TestReRegisterInTailResetsTuner(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < 120; i++ {
		put(t, c, float64(i), i)
	}
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}
	register(t, c) // re-registration resets the tuner (§4.3), logged in the tail

	c2, _, _ := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	tuner := c2.CaptureState().Functions[0].KeyTypes[0].Tuner
	if tuner.Active || tuner.Threshold != 0 || tuner.Puts != 0 {
		t.Errorf("tuner = %+v, want reset state after replayed re-registration", tuner)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"", FsyncInterval, true},
		{"sometimes", "", false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestIDWatermarkSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	var maxID core.ID
	for i := 0; i < 10; i++ {
		maxID = put(t, c, float64(i), i)
	}
	c2, l2, _ := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	id := put(t, c2, 99, "new")
	if id <= maxID {
		t.Errorf("post-recovery ID %d not past watermark %d", id, maxID)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentAndClose(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	put(t, c, 1, "v")
	l.Instrument(telemetry.NewRegistry())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Appends after Close are dropped, not panics.
	l.LogDelete(1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
