package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// The kill-point matrix: each test simulates a crash at one point of
// the write/snapshot/compaction protocol by mutilating the files the
// way the interrupted step would leave them, then asserts recovery
// restores exactly the committed state.

// buildDir populates a data directory with n puts (and returns the
// cache it built, still attached to the abandoned log, for reference
// state).
func buildDir(t *testing.T, dir string, n int) *core.Cache {
	t.Helper()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < n; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	return c
}

// newestSegment returns the path of the highest-sequence segment that
// holds data (the abandoned log's active segment).
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("scan: segs=%v err=%v", segs, err)
	}
	return segPath(dir, segs[len(segs)-1])
}

func TestCrashTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	buildDir(t, dir, 50)

	// Kill point: mid-append. Chop bytes off the newest segment so its
	// final record is torn.
	path := newestSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if !rstats.TornTail {
		t.Fatalf("torn tail not detected: %+v", rstats)
	}
	if rstats.Entries != 49 {
		t.Fatalf("recovered %d entries, want 49 (all but the torn one)", rstats.Entries)
	}
	for i := 0; i < 49; i++ {
		wantHit(t, c2, float64(i), fmt.Sprintf("v%d", i))
	}
	wantMiss(t, c2, 49)
}

func TestCrashGarbageAfterTear(t *testing.T) {
	dir := t.TempDir()
	buildDir(t, dir, 20)

	// Kill point: a tear followed by stale page-cache garbage. Replay
	// must stop at the tear, not resync onto the garbage.
	f, err := os.OpenFile(newestSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}) // length says 9, only 3 present
	f.Close()

	_, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if !rstats.TornTail || rstats.Entries != 20 {
		t.Fatalf("recovery shape = %+v, want torn tail with 20 entries", rstats)
	}
}

func TestCrashMidSnapshotWrite(t *testing.T) {
	dir := t.TempDir()
	c := buildDir(t, dir, 40)

	// Kill point: mid-snapshot. AtomicWriteFile dies before the rename,
	// leaving only a .tmp with a prefix of the data.
	state := c.CaptureState()
	full := snapPath(dir, 99)
	if err := writeSnapshot(full, state); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(full); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full+".tmp", data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if rstats.SnapshotUsed {
		t.Fatalf("recovery consumed an unpublished snapshot: %+v", rstats)
	}
	if rstats.Entries != 40 {
		t.Fatalf("recovered %d entries from the log, want 40", rstats.Entries)
	}
}

func TestCrashTornPublishedSnapshot(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < 30; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}

	// Kill point: disk corruption inside the NEWEST published snapshot.
	// Recovery must fall back to an older generation... but compaction
	// already removed it, so here the fallback is: no snapshot, and the
	// segments newer than the bad snapshot. To keep a fallback
	// generation alive, plant an older valid snapshot manually.
	_, snaps, err := scanDir(dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snaps=%v err=%v", snaps, err)
	}
	newest := snapPath(dir, snaps[0])
	older := snapPath(dir, snaps[0]-1)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(older, data, 0o644); err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // corrupt the newest in place
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if rstats.InvalidSnapshots != 1 || !rstats.SnapshotUsed || rstats.SnapshotSeq != snaps[0]-1 {
		t.Fatalf("recovery shape = %+v, want fallback to snapshot %d", rstats, snaps[0]-1)
	}
	if rstats.Entries != 40 {
		t.Fatalf("recovered %d entries, want 40", rstats.Entries)
	}
	for i := 0; i < 40; i++ {
		wantHit(t, c2, float64(i), fmt.Sprintf("v%d", i))
	}
}

// saveDataFiles snapshots every segment and snapshot file in dir so a
// test can undo compaction and keep older generations on disk.
func saveDataFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	saved := map[string][]byte{}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range segs {
		p := segPath(dir, seq)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = b
	}
	for _, seq := range snaps {
		p := snapPath(dir, seq)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = b
	}
	return saved
}

// restoreMissingFiles writes back only the saved files compaction
// removed, leaving the live log's active segment untouched.
func restoreMissingFiles(t *testing.T, dir string, saved map[string][]byte) {
	t.Helper()
	for p, b := range saved {
		if _, err := os.Stat(p); err == nil {
			continue
		}
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryFallsBackTwoSnapshotGenerations corrupts the two newest
// of three published snapshot generations. Recovery must skip both,
// boot from the oldest survivor, and replay every tail segment between
// that snapshot and the crash — the tails behind the two dead
// generations plus the final pre-crash tail — so no committed put is
// lost even when two consecutive snapshot cycles rot on disk.
func TestRecoveryFallsBackTwoSnapshotGenerations(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)

	for i := 0; i < 30; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	if _, err := l.Snapshot(c); err != nil { // generation 1: the survivor
		t.Fatal(err)
	}
	for i := 30; i < 50; i++ { // tail behind generation 2
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	saved := saveDataFiles(t, dir)
	if _, err := l.Snapshot(c); err != nil { // generation 2
		t.Fatal(err)
	}
	restoreMissingFiles(t, dir, saved)

	for i := 50; i < 65; i++ { // tail behind generation 3
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	saved = saveDataFiles(t, dir)
	if _, err := l.Snapshot(c); err != nil { // generation 3
		t.Fatal(err)
	}
	restoreMissingFiles(t, dir, saved)

	for i := 65; i < 70; i++ { // final tail, never snapshotted
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}

	// Crash, then disk corruption eats the two NEWEST snapshots.
	_, snaps, err := scanDir(dir)
	if err != nil || len(snaps) != 3 {
		t.Fatalf("snaps=%v err=%v, want 3 generations on disk", snaps, err)
	}
	for _, seq := range snaps[1:] {
		p := snapPath(dir, seq)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if rstats.InvalidSnapshots != 2 {
		t.Fatalf("invalid snapshots = %d, want 2: %+v", rstats.InvalidSnapshots, rstats)
	}
	if !rstats.SnapshotUsed || rstats.SnapshotSeq != snaps[0] {
		t.Fatalf("recovery shape = %+v, want fallback to snapshot %d", rstats, snaps[0])
	}
	if rstats.SegmentsReplayed < 3 {
		t.Fatalf("replayed %d segments, want at least the three tails: %+v", rstats.SegmentsReplayed, rstats)
	}
	if rstats.Entries != 70 {
		t.Fatalf("recovered %d entries, want 70", rstats.Entries)
	}
	for i := 0; i < 70; i++ {
		wantHit(t, c2, float64(i), fmt.Sprintf("v%d", i))
	}
}

func TestCrashBeforeCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)
	for i := 0; i < 30; i++ {
		put(t, c, float64(i), fmt.Sprintf("v%d", i))
	}
	id7 := put(t, c, 7.5, "doomed")

	// Preserve the pre-snapshot segments, snapshot (which compacts
	// them), then put them back: the on-disk picture of a crash between
	// snapshot publication and compaction finishing.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	saved := map[uint64][]byte{}
	for _, seq := range segs {
		b, err := os.ReadFile(segPath(dir, seq))
		if err != nil {
			t.Fatal(err)
		}
		saved[seq] = b
	}
	// The doomed entry dies BEFORE the snapshot, so its put lives only
	// in the old segments; if recovery replayed them, it would resurrect.
	if _, err := c.InvalidateRadius("f", "scalar", vec.Vector{7.5}, 0.01); err != nil {
		t.Fatal(err)
	}
	_ = id7
	if _, err := l.Snapshot(c); err != nil {
		t.Fatal(err)
	}
	for seq, b := range saved {
		if err := os.WriteFile(segPath(dir, seq), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if !rstats.SnapshotUsed {
		t.Fatalf("snapshot unused: %+v", rstats)
	}
	if rstats.Entries != 30 {
		t.Fatalf("recovered %d entries, want 30", rstats.Entries)
	}
	wantMiss(t, c2, 7.5) // stale segment must not resurrect the invalidated entry

	// The next snapshot cycle retires the stale files for good.
	if _, err := openTestSnapshot(t, dir, c2); err != nil {
		t.Fatal(err)
	}
}

// openTestSnapshot runs one snapshot+compaction cycle on a fresh log
// handle and verifies no stale segment survives it.
func openTestSnapshot(t *testing.T, dir string, c *core.Cache) (*Log, error) {
	t.Helper()
	l := openTest(t, dir)
	if _, err := l.Snapshot(c); err != nil {
		return nil, err
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range segs {
		if len(snaps) > 0 && seq < snaps[len(snaps)-1] {
			t.Errorf("stale segment %d survived compaction", seq)
		}
	}
	return l, l.Close()
}

func TestCrashEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	buildDir(t, dir, 10)

	// Kill point: between segment creation and its magic reaching disk
	// (Open writes the magic through a buffer). Model it as a
	// zero-length newest segment.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	empty := segPath(dir, segs[len(segs)-1]+1)
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, rstats := recoverInto(t, dir, time.Unix(0, 0).Add(time.Minute))
	if rstats.Entries != 10 {
		t.Fatalf("recovered %d entries, want 10", rstats.Entries)
	}
	if !rstats.TornTail {
		t.Fatalf("empty trailing segment not flagged as torn: %+v", rstats)
	}
}

// TestAtomicWriteFileFsyncFailure injects fsync failures and asserts the
// publish contract: on any failure the target path is untouched and no
// temp file leaks.
func TestAtomicWriteFileFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "out.bin")
	if err := AtomicWriteFile(target, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected fsync failure")
	defer func() {
		syncFile = func(f *os.File) error { return f.Sync() }
		syncDir = func(f *os.File) error { return f.Sync() }
	}()

	syncFile = func(*os.File) error { return boom }
	if err := AtomicWriteFile(target, []byte("v2"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("file-fsync failure not surfaced: %v", err)
	}
	if got, _ := os.ReadFile(target); string(got) != "v1" {
		t.Fatalf("target clobbered by failed publish: %q", got)
	}
	assertNoTempFiles(t, dir)

	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir = func(*os.File) error { return boom }
	if err := AtomicWriteFile(target, []byte("v3"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("dir-fsync failure not surfaced: %v", err)
	}
	assertNoTempFiles(t, dir)

	syncDir = func(f *os.File) error { return f.Sync() }
	if err := AtomicWriteFile(target, []byte("v4"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(target); string(got) != "v4" {
		t.Fatalf("target = %q after recovery, want v4", got)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
}

// TestLogSurvivesAppendFsyncFailure: a failing disk degrades durability,
// never serving — appends keep being accepted and counted as errors.
func TestLogSurvivesAppendFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir) // FsyncAlways: every append syncs
	c, _ := newCache(l, time.Unix(0, 0))
	register(t, c)

	boom := errors.New("injected fsync failure")
	syncFile = func(*os.File) error { return boom }
	defer func() { syncFile = func(f *os.File) error { return f.Sync() } }()

	for i := 0; i < 5; i++ {
		put(t, c, float64(i), i) // must not panic or block
	}
	if s := l.Stats(); s.AppendErrors == 0 {
		t.Error("append errors not counted under failing fsync")
	}
	// The cache itself is unaffected.
	wantHit(t, c, 3, 3)
}
