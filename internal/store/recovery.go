package store

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
)

// RecoveryStats reports what a boot recovery pass found.
type RecoveryStats struct {
	// SnapshotSeq is the sequence of the snapshot used (0 when none).
	SnapshotSeq uint64
	// SnapshotUsed reports whether a valid snapshot contributed.
	SnapshotUsed bool
	// InvalidSnapshots counts snapshot files that failed validation and
	// were passed over for an older one.
	InvalidSnapshots int
	// SegmentsReplayed is the number of segment files read.
	SegmentsReplayed int
	// RecordsReplayed is the number of valid log records applied.
	RecordsReplayed int
	// TornTail reports that replay stopped at a torn or corrupt record
	// — the expected signature of a crash mid-append.
	TornTail bool
	// Functions and Entries size the state handed to core.Cache.Restore.
	Functions int
	Entries   int
	// Duration is the wall time of the pass.
	Duration time.Duration
}

// Recover rebuilds the durable state from disk: the newest valid
// snapshot plus a replay of every segment the snapshot does not cover.
// Replay is idempotent by entry ID — a put upserts, a delete removes —
// so records duplicated between a snapshot capture and its pre-roll are
// harmless. Replay stops at the first torn record (a crash mid-append
// tears only the tail of the newest segment; anything after a tear is
// unordered noise). The caller feeds the returned state to
// core.Cache.Restore, which drops entries whose absolute expiry passed
// while the process was down.
//
// Call Recover once, after Open and before the cache serves traffic.
func (l *Log) Recover() (*core.DurableState, RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats

	segs, snaps, err := scanDir(l.cfg.Dir)
	if err != nil {
		return nil, stats, err
	}

	// Newest valid snapshot wins; invalid ones (torn by a crash that
	// beat AtomicWriteFile's rename, or corrupted on disk) fall through
	// to older generations, and with none left recovery is a pure log
	// replay from the oldest surviving segment.
	state := &core.DurableState{}
	var snapSeq uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshot(snapPath(l.cfg.Dir, snaps[i]))
		if err != nil {
			stats.InvalidSnapshots++
			l.logf("store: ignoring snapshot %d: %v", snaps[i], err)
			continue
		}
		state, snapSeq = s, snaps[i]
		stats.SnapshotUsed, stats.SnapshotSeq = true, snapSeq
		break
	}

	entries := make(map[uint64]*core.StoreEntry, len(state.Entries))
	for i := range state.Entries {
		entries[state.Entries[i].ID] = &state.Entries[i]
	}
	funcs := make(map[string]*core.DurableFunction, len(state.Functions))
	order := make([]string, 0, len(state.Functions))
	for i := range state.Functions {
		funcs[state.Functions[i].Name] = &state.Functions[i]
		order = append(order, state.Functions[i].Name)
	}
	maxID := state.MaxID

replay:
	for _, seq := range segs {
		if seq < snapSeq || seq >= l.segSeq {
			continue // superseded by the snapshot / our own empty active segment
		}
		data, err := os.ReadFile(segPath(l.cfg.Dir, seq))
		if err != nil {
			return nil, stats, fmt.Errorf("store: read segment %d: %w", seq, err)
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			// An empty or partially created segment: a crash between
			// file creation and the magic reaching disk. Nothing in it.
			stats.TornTail = true
			break replay
		}
		data = data[len(segMagic):]
		stats.SegmentsReplayed++
		for {
			payload, rest, ok, torn := nextRecord(data)
			if torn {
				stats.TornTail = true
				break replay
			}
			if !ok {
				break
			}
			data = rest
			r := &reader{b: payload}
			switch typ := r.byte(); typ {
			case recRegister:
				fn, kts := r.register()
				if r.err != nil {
					stats.TornTail = true
					break replay
				}
				applyRegister(funcs, &order, fn, kts)
			case recPut:
				rec := r.entryBody()
				if r.err != nil {
					stats.TornTail = true
					break replay
				}
				if rec.ID > maxID {
					maxID = rec.ID
				}
				cp := rec
				entries[rec.ID] = &cp
			case recDelete:
				id := r.uvarint()
				if r.err != nil {
					stats.TornTail = true
					break replay
				}
				delete(entries, id)
			default:
				// A record type from a future format version: stop, the
				// same way a torn tail stops replay.
				stats.TornTail = true
				break replay
			}
			stats.RecordsReplayed++
		}
	}

	state.MaxID = maxID
	state.Functions = make([]core.DurableFunction, 0, len(order))
	for _, name := range order {
		state.Functions = append(state.Functions, *funcs[name])
	}
	state.Entries = make([]core.StoreEntry, 0, len(entries))
	for _, e := range entries {
		state.Entries = append(state.Entries, *e)
	}
	sort.Slice(state.Entries, func(i, j int) bool { return state.Entries[i].ID < state.Entries[j].ID })

	stats.Functions = len(state.Functions)
	stats.Entries = len(state.Entries)
	stats.Duration = time.Since(start)
	l.recoveryNanos.Store(int64(stats.Duration))
	l.recoveredEntries.Store(int64(stats.Entries))
	return state, stats, nil
}

// applyRegister replays one RegisterFunction call onto the merged
// function table. Mirroring the live call's contract (§4.3), a
// re-registration resets each key type's tuner; lookup counters carry
// over for key types that survive, and key types absent from the new
// spec are dropped along with their counters.
func applyRegister(funcs map[string]*core.DurableFunction, order *[]string, fn string, kts []core.StoreKeyType) {
	df := funcs[fn]
	if df == nil {
		df = &core.DurableFunction{Name: fn}
		funcs[fn] = df
		*order = append(*order, fn)
	}
	prev := make(map[string]*core.DurableKeyType, len(df.KeyTypes))
	for i := range df.KeyTypes {
		prev[df.KeyTypes[i].Name] = &df.KeyTypes[i]
	}
	next := make([]core.DurableKeyType, 0, len(kts))
	for _, kt := range kts {
		dk := core.DurableKeyType{StoreKeyType: kt}
		if p := prev[kt.Name]; p != nil {
			dk.Hits, dk.Misses, dk.Dropouts = p.Hits, p.Misses, p.Dropouts
		}
		next = append(next, dk)
	}
	df.KeyTypes = next
}
