// Package store is the cache's durability layer: an append-only,
// CRC-checked segment log of registrations, admissions, and removals,
// periodic snapshots of the full durable state (entries plus per-series
// counters and tuner state), crash recovery that merges the newest
// valid snapshot with the log tail, and background compaction that
// retires segments a snapshot has superseded. It implements core.Store
// and is wired into the daemon by cmd/potluckd -data-dir; see DESIGN.md
// §"Durability and recovery" for the file formats and the replay
// contract.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/vec"
)

// Record framing (segments and snapshots share it):
//
//	u32 length | u32 CRC-32 (IEEE) of payload | payload
//
// both fixed fields little-endian. The payload's first byte is the
// record type. A record whose length field is implausible, whose
// payload is short, or whose CRC mismatches is a torn tail: replay
// stops there (see recovery.go).
const (
	recRegister = byte(1) // one RegisterFunction call
	recPut      = byte(2) // one admitted entry
	recDelete   = byte(3) // one pre-deadline removal (evict/invalidate)

	snapMeta  = byte(16) // snapshot header: functions, tuners, counters
	snapEntry = byte(17) // one snapshot entry (same body as recPut)
	snapEnd   = byte(18) // snapshot footer: total entry count
)

// maxRecord bounds a single record, protecting replay from a corrupt
// length prefix. It must exceed the service layer's largest value (8
// MiB frames) with room for keys and headers.
const maxRecord = 64 << 20

// Value type tags. The set mirrors core's serializable values: the
// concrete Go type round-trips exactly, so a restored cache compares
// equal under reflect.DeepEqual-based tuner equality.
const (
	valNil = byte(iota)
	valBool
	valInt
	valInt8
	valInt16
	valInt32
	valInt64
	valUint
	valUint8
	valUint16
	valUint32
	valUint64
	valFloat32
	valFloat64
	valString
	valBytes
	valVector
)

// appendValue encodes v, reporting false (buffer unchanged) for value
// types the codec cannot persist.
func appendValue(b []byte, v any) ([]byte, bool) {
	switch x := v.(type) {
	case nil:
		return append(b, valNil), true
	case bool:
		if x {
			return append(b, valBool, 1), true
		}
		return append(b, valBool, 0), true
	case int:
		return binary.AppendVarint(append(b, valInt), int64(x)), true
	case int8:
		return binary.AppendVarint(append(b, valInt8), int64(x)), true
	case int16:
		return binary.AppendVarint(append(b, valInt16), int64(x)), true
	case int32:
		return binary.AppendVarint(append(b, valInt32), int64(x)), true
	case int64:
		return binary.AppendVarint(append(b, valInt64), x), true
	case uint:
		return binary.AppendUvarint(append(b, valUint), uint64(x)), true
	case uint8:
		return binary.AppendUvarint(append(b, valUint8), uint64(x)), true
	case uint16:
		return binary.AppendUvarint(append(b, valUint16), uint64(x)), true
	case uint32:
		return binary.AppendUvarint(append(b, valUint32), uint64(x)), true
	case uint64:
		return binary.AppendUvarint(append(b, valUint64), x), true
	case float32:
		return binary.LittleEndian.AppendUint32(append(b, valFloat32), math.Float32bits(x)), true
	case float64:
		return binary.LittleEndian.AppendUint64(append(b, valFloat64), math.Float64bits(x)), true
	case string:
		return appendString(append(b, valString), x), true
	case []byte:
		return appendBytes(append(b, valBytes), x), true
	case vec.Vector:
		return appendVector(append(b, valVector), x), true
	}
	return b, false
}

// PersistableValue reports whether the codec can round-trip v. Core
// applies the same set in CaptureState; LogPut records with other value
// types are skipped and counted.
func PersistableValue(v any) bool {
	switch v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string, []byte, vec.Vector:
		return true
	}
	return false
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendVector(b []byte, v vec.Vector) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, f := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// reader decodes a record payload sequentially. Every method keeps an
// error sticky, so decode paths check once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("store: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) float64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("bytes")
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:])
	r.off += int(n)
	return p
}

func (r *reader) vector() vec.Vector {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off)/8 {
		r.fail("vector")
		return nil
	}
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = r.float64()
	}
	return v
}

func (r *reader) value() any {
	switch tag := r.byte(); tag {
	case valNil:
		return nil
	case valBool:
		return r.byte() != 0
	case valInt:
		return int(r.varint())
	case valInt8:
		return int8(r.varint())
	case valInt16:
		return int16(r.varint())
	case valInt32:
		return int32(r.varint())
	case valInt64:
		return r.varint()
	case valUint:
		return uint(r.uvarint())
	case valUint8:
		return uint8(r.uvarint())
	case valUint16:
		return uint16(r.uvarint())
	case valUint32:
		return uint32(r.uvarint())
	case valUint64:
		return r.uvarint()
	case valFloat32:
		return math.Float32frombits(r.u32())
	case valFloat64:
		return r.float64()
	case valString:
		return r.string()
	case valBytes:
		return r.bytes()
	case valVector:
		return r.vector()
	default:
		r.fail("value tag")
		return nil
	}
}

// appendRegister encodes a recRegister payload.
func appendRegister(b []byte, fn string, kts []core.StoreKeyType) []byte {
	b = append(b, recRegister)
	b = appendString(b, fn)
	b = binary.AppendUvarint(b, uint64(len(kts)))
	for _, kt := range kts {
		b = appendKeyType(b, kt)
	}
	return b
}

func appendKeyType(b []byte, kt core.StoreKeyType) []byte {
	b = appendString(b, kt.Name)
	b = appendString(b, kt.Metric)
	b = appendString(b, kt.Index)
	return binary.AppendUvarint(b, uint64(kt.Dim))
}

func (r *reader) keyType() core.StoreKeyType {
	return core.StoreKeyType{
		Name:   r.string(),
		Metric: r.string(),
		Index:  r.string(),
		Dim:    int(r.uvarint()),
	}
}

func (r *reader) register() (string, []core.StoreKeyType) {
	fn := r.string()
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)) {
		r.fail("register key types")
		return fn, nil
	}
	kts := make([]core.StoreKeyType, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		kts = append(kts, r.keyType())
	}
	return fn, kts
}

// appendEntryBody encodes a StoreEntry (shared by recPut and snapEntry
// payloads, after the type byte). Reports false for values the codec
// cannot persist.
func appendEntryBody(b []byte, rec *core.StoreEntry) ([]byte, bool) {
	start := len(b)
	b = binary.AppendUvarint(b, rec.ID)
	b = appendString(b, rec.Function)
	b = appendString(b, rec.App)
	b = binary.AppendVarint(b, rec.CostNanos)
	b = binary.AppendUvarint(b, uint64(rec.Size))
	b = binary.AppendVarint(b, rec.AccessCount)
	b = binary.AppendVarint(b, rec.InsertedAtNanos)
	b = binary.AppendVarint(b, rec.LastAccessNanos)
	b = binary.AppendVarint(b, rec.ExpiresAtNanos)
	b = binary.AppendUvarint(b, uint64(len(rec.Keys)))
	for _, k := range rec.Keys {
		b = appendString(b, k.KeyType)
		b = appendVector(b, k.Key)
	}
	b, ok := appendValue(b, rec.Value)
	if !ok {
		return b[:start], false
	}
	return b, true
}

func (r *reader) entryBody() core.StoreEntry {
	rec := core.StoreEntry{
		ID:              r.uvarint(),
		Function:        r.string(),
		App:             r.string(),
		CostNanos:       r.varint(),
		Size:            int(r.uvarint()),
		AccessCount:     r.varint(),
		InsertedAtNanos: r.varint(),
		LastAccessNanos: r.varint(),
		ExpiresAtNanos:  r.varint(),
	}
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)) {
		r.fail("entry keys")
		return rec
	}
	rec.Keys = make([]core.StoreKey, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		rec.Keys = append(rec.Keys, core.StoreKey{KeyType: r.string(), Key: r.vector()})
	}
	rec.Value = r.value()
	return rec
}

// appendTunerState encodes a core.TunerState.
func appendTunerState(b []byte, t core.TunerState) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Threshold))
	if t.Active {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(t.Puts))
	b = binary.AppendVarint(b, int64(t.Tightenings))
	b = binary.AppendVarint(b, int64(t.Loosenings))
	b = appendVector(b, t.WarmupSame)
	b = appendVector(b, t.WarmupDiff)
	return b
}

func (r *reader) tunerState() core.TunerState {
	return core.TunerState{
		Threshold:   r.float64(),
		Active:      r.byte() != 0,
		Puts:        int(r.varint()),
		Tightenings: int(r.varint()),
		Loosenings:  int(r.varint()),
		WarmupSame:  r.vector(),
		WarmupDiff:  r.vector(),
	}
}
