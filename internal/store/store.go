package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// File layout under Config.Dir:
//
//	wal-<seq>.seg    append-only segment logs, seq strictly increasing
//	snap-<seq>.snap  snapshots; <seq> is the segment that was ACTIVE
//	                 when the capture started, so recovery = newest
//	                 valid snapshot + replay of segments with seq >=
//	                 that number (replay is idempotent by entry ID,
//	                 absorbing records that landed in the active
//	                 segment before the capture ran)
//	*.tmp            in-flight snapshot writes; ignored by recovery
//
// Compaction deletes segments and snapshots strictly older than the
// newest durable snapshot. A crash at ANY point leaves a recoverable
// directory: unreferenced old files are re-deleted on the next
// compaction, a torn snapshot .tmp is ignored, and a torn segment tail
// stops replay at the last whole record.

const (
	segMagic  = "PLKSEG01"
	snapMagic = "PLKSNP01"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every appended record: no admitted entry
	// is ever lost, at a per-put disk-latency cost.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval (the default) syncs on a background timer
	// (Config.FsyncInterval): a crash loses at most the last interval
	// of appends.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS page cache; segment rolls
	// and snapshots still sync.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates an operator-supplied policy name.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

// Config configures a Log. The zero value of every field takes the
// documented default.
type Config struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// SegmentBytes rolls the active segment past this size (default 8
	// MiB).
	SegmentBytes int64
	// Fsync selects the append durability policy (default interval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotInterval is Run's snapshot+compaction cadence (default
	// 1m).
	SnapshotInterval time.Duration
	// Logf, when non-nil, receives operational messages (append
	// failures, snapshot errors).
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 8 << 20
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = 100 * time.Millisecond
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = time.Minute
	}
	return cfg
}

// Log is the durable store: it implements core.Store (the append
// hooks), writes snapshots, recovers state at boot, and compacts
// superseded files. All methods are safe for concurrent use. Append
// failures never propagate to the cache — they are counted, reported
// through Logf once per failure streak, and the log keeps serving; a
// sick disk degrades durability, not lookups.
type Log struct {
	cfg Config

	mu       sync.Mutex
	seg      *os.File
	w        *bufio.Writer
	segSeq   uint64
	segBytes int64
	dirty    bool
	closed   bool
	encBuf   []byte
	inErr    bool // a failure streak is in progress (logged once)

	// snapMu serializes snapshot+compaction cycles.
	snapMu sync.Mutex

	flushDone chan struct{}
	flushStop chan struct{}

	appends          atomic.Int64
	appendErrors     atomic.Int64
	bytesWritten     atomic.Int64
	fsyncs           atomic.Int64
	snapshots        atomic.Int64
	snapshotErrors   atomic.Int64
	compactedSegs    atomic.Int64
	skippedValues    atomic.Int64
	segments         atomic.Int64
	recoveryNanos    atomic.Int64
	recoveredEntries atomic.Int64
}

// Open creates or reopens the data directory and starts a fresh active
// segment past every existing one. Existing segments and snapshots are
// left untouched for Recover, which must run before the cache serves
// traffic (Open → Recover → core.Cache.Restore → serve).
func Open(cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: data dir: %w", err)
	}
	segs, _, err := scanDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var maxSeq uint64
	for _, s := range segs {
		if s > maxSeq {
			maxSeq = s
		}
	}
	l := &Log{cfg: cfg}
	l.segments.Store(int64(len(segs)))
	if err := l.openSegmentLocked(maxSeq + 1); err != nil {
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// scanDir lists segment and snapshot sequence numbers, both ascending.
func scanDir(dir string) (segs, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: scan data dir: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if seq, ok := parseSeq(name, "wal-", ".seg"); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", seq))
}

// openSegmentLocked creates segment seq, writes its magic, and makes
// its directory entry durable. Caller holds mu (or is Open).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := segPath(l.cfg.Dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 64<<10)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("store: segment magic: %w", err)
	}
	if err := fsyncDir(l.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	l.seg, l.w, l.segSeq = f, w, seq
	l.segBytes = int64(len(segMagic))
	l.dirty = true
	l.segments.Add(1)
	return nil
}

// logf reports through the configured sink, if any.
func (l *Log) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

// LogRegister implements core.Store.
func (l *Log) LogRegister(fn string, keyTypes []core.StoreKeyType) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.encBuf = appendRegister(l.encBuf[:0], fn, keyTypes)
	l.appendLocked(l.encBuf)
}

// LogPut implements core.Store. Entries whose value type the codec
// cannot persist are skipped and counted — they live until restart,
// exactly like the legacy gob snapshot's skip set.
func (l *Log) LogPut(rec core.StoreEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := appendEntryBody(append(l.encBuf[:0], recPut), &rec)
	if !ok {
		l.encBuf = b
		l.skippedValues.Add(1)
		return
	}
	l.encBuf = b
	l.appendLocked(l.encBuf)
}

// LogDelete implements core.Store.
func (l *Log) LogDelete(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.encBuf = binary.AppendUvarint(append(l.encBuf[:0], recDelete), id)
	l.appendLocked(l.encBuf)
}

// appendLocked frames payload into the active segment and applies the
// fsync and roll policies. Caller holds mu.
func (l *Log) appendLocked(payload []byte) {
	if l.closed || l.seg == nil {
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	_, err := l.w.Write(hdr[:])
	if err == nil {
		_, err = l.w.Write(payload)
	}
	if err != nil {
		l.noteErrLocked("append", err)
		return
	}
	n := int64(len(hdr) + len(payload))
	l.segBytes += n
	l.bytesWritten.Add(n)
	l.appends.Add(1)
	l.dirty = true
	if l.cfg.Fsync == FsyncAlways {
		if err := l.flushSyncLocked(); err != nil {
			l.noteErrLocked("fsync", err)
			return
		}
	}
	if l.segBytes >= l.cfg.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			l.noteErrLocked("roll", err)
			return
		}
	}
	l.inErr = false
}

// noteErrLocked counts an append-path failure and reports the first of
// a streak, so a dead disk does not flood the daemon log.
func (l *Log) noteErrLocked(op string, err error) {
	l.appendErrors.Add(1)
	if !l.inErr {
		l.inErr = true
		l.logf("store: %s failed (durability degraded until it recovers): %v", op, err)
	}
}

// flushSyncLocked drains the buffered writer and fsyncs the active
// segment. Caller holds mu.
func (l *Log) flushSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := syncFile(l.seg); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// rollLocked finishes the active segment (flush + fsync — a completed
// segment is a durability boundary regardless of policy) and starts the
// next one. Caller holds mu.
func (l *Log) rollLocked() error {
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	old := l.seg
	if err := l.openSegmentLocked(l.segSeq + 1); err != nil {
		return err // keep writing to the old segment
	}
	return old.Close()
}

// flushLoop is the FsyncInterval background syncer.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if err := l.flushSyncLocked(); err != nil {
					l.noteErrLocked("interval fsync", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Sync forces buffered appends to stable storage, whatever the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty {
		return nil
	}
	return l.flushSyncLocked()
}

// Close flushes, syncs, and closes the active segment. Appends after
// Close are dropped silently (the cache treats the store as
// fire-and-forget during shutdown).
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.w.Flush()
	if serr := syncFile(l.seg); err == nil {
		err = serr
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// Snapshot rolls the log, captures the cache's durable state, publishes
// it as snap-<activeSeq>.snap with full fsync discipline, and compacts
// every file the new snapshot supersedes. Records appended between the
// roll and the capture land in both the snapshot and the replayed
// segment; replay is idempotent by entry ID, so the overlap is
// harmless.
func (l *Log) Snapshot(c *core.Cache) (*core.DurableState, error) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("store: snapshot on closed log")
	}
	if err := l.rollLocked(); err != nil {
		l.mu.Unlock()
		l.snapshotErrors.Add(1)
		return nil, fmt.Errorf("store: pre-snapshot roll: %w", err)
	}
	snapSeq := l.segSeq
	l.mu.Unlock()

	state := c.CaptureState()
	if state.Skipped > 0 {
		l.skippedValues.Add(int64(state.Skipped))
	}
	if err := writeSnapshot(snapPath(l.cfg.Dir, snapSeq), state); err != nil {
		l.snapshotErrors.Add(1)
		return nil, err
	}
	l.snapshots.Add(1)
	l.compact(snapSeq)
	return state, nil
}

// compact deletes segments and snapshots strictly older than keepSeq.
// Failures are reported and retried implicitly by the next cycle.
func (l *Log) compact(keepSeq uint64) {
	segs, snaps, err := scanDir(l.cfg.Dir)
	if err != nil {
		l.logf("store: compaction scan: %v", err)
		return
	}
	removed := 0
	for _, seq := range segs {
		if seq >= keepSeq {
			continue
		}
		if err := os.Remove(segPath(l.cfg.Dir, seq)); err != nil {
			l.logf("store: compaction: %v", err)
			continue
		}
		removed++
		l.compactedSegs.Add(1)
		l.segments.Add(-1)
	}
	for _, seq := range snaps {
		if seq >= keepSeq {
			continue
		}
		if err := os.Remove(snapPath(l.cfg.Dir, seq)); err != nil {
			l.logf("store: compaction: %v", err)
		}
	}
	if removed > 0 {
		if err := fsyncDir(l.cfg.Dir); err != nil {
			l.logf("store: compaction: %v", err)
		}
	}
}

// Run snapshots and compacts on Config.SnapshotInterval until ctx ends,
// then takes one final snapshot so a graceful shutdown restarts with an
// empty tail.
func (l *Log) Run(ctx context.Context, c *core.Cache) {
	t := time.NewTicker(l.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, err := l.Snapshot(c); err != nil {
				l.logf("store: final snapshot: %v", err)
			}
			return
		case <-t.C:
			if _, err := l.Snapshot(c); err != nil {
				l.logf("store: periodic snapshot: %v", err)
			}
		}
	}
}

// Stats is a point-in-time view of the log's activity counters.
type Stats struct {
	Appends          int64
	AppendErrors     int64
	BytesWritten     int64
	Fsyncs           int64
	Snapshots        int64
	SnapshotErrors   int64
	CompactedSegs    int64
	SkippedValues    int64
	Segments         int64
	RecoveredEntries int64
	RecoveryDuration time.Duration
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:          l.appends.Load(),
		AppendErrors:     l.appendErrors.Load(),
		BytesWritten:     l.bytesWritten.Load(),
		Fsyncs:           l.fsyncs.Load(),
		Snapshots:        l.snapshots.Load(),
		SnapshotErrors:   l.snapshotErrors.Load(),
		CompactedSegs:    l.compactedSegs.Load(),
		SkippedValues:    l.skippedValues.Load(),
		Segments:         l.segments.Load(),
		RecoveredEntries: l.recoveredEntries.Load(),
		RecoveryDuration: time.Duration(l.recoveryNanos.Load()),
	}
}

// Instrument registers the log's metrics with a telemetry registry, all
// func-backed reads of counters the log already maintains.
func (l *Log) Instrument(r *telemetry.Registry) {
	r.Counter("potluck_store_appends_total", "Records appended to the durable segment log.").
		SetFunc(l.appends.Load)
	r.Counter("potluck_store_append_errors_total", "Durable-log append failures (durability degraded, serving unaffected).").
		SetFunc(l.appendErrors.Load)
	r.Counter("potluck_store_bytes_written_total", "Bytes appended to the durable segment log.").
		SetFunc(l.bytesWritten.Load)
	r.Counter("potluck_store_fsyncs_total", "fsync calls issued by the durable store.").
		SetFunc(l.fsyncs.Load)
	r.Counter("potluck_store_snapshots_total", "Durable snapshots published.").
		SetFunc(l.snapshots.Load)
	r.Counter("potluck_store_snapshot_errors_total", "Durable snapshot attempts that failed.").
		SetFunc(l.snapshotErrors.Load)
	r.Counter("potluck_store_compacted_segments_total", "Log segments deleted by compaction.").
		SetFunc(l.compactedSegs.Load)
	r.Counter("potluck_store_skipped_values_total", "Entries not persisted because their value type cannot cross a restart.").
		SetFunc(l.skippedValues.Load)
	r.Gauge("potluck_store_segments", "Live segment files, including the active one.").
		SetFunc(func() float64 { return float64(l.segments.Load()) })
	r.Gauge("potluck_store_recovery_seconds", "Wall time of the boot recovery pass.").
		SetFunc(func() float64 { return float64(l.recoveryNanos.Load()) / 1e9 })
	r.Gauge("potluck_store_recovered_entries", "Entries restored by the boot recovery pass.").
		SetFunc(func() float64 { return float64(l.recoveredEntries.Load()) })
}
