package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// benchDir builds a data directory holding n logged entries and returns
// it. The log is closed so the benchmark measures a cold open.
func benchDir(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	l, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	c, _ := newBenchCache(l)
	if err := c.RegisterFunction("f", core.KeyTypeSpec{Name: "scalar"}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Put("f", core.PutRequest{
			Keys:  map[string]vec.Vector{"scalar": {float64(i)}},
			Value: fmt.Sprintf("v%d", i),
			Cost:  time.Millisecond,
			Size:  64,
			TTL:   24 * time.Hour,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

func newBenchCache(s core.Store) (*core.Cache, struct{}) {
	return core.New(core.Config{
		Store:          s,
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	}), struct{}{}
}

// BenchmarkRecovery times a full boot recovery — open, replay, restore
// into a fresh cache — at several store sizes. bench.sh records the
// 10000-entry series into BENCH_core.json as the recovery-time figure.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			dir := benchDir(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := Open(Config{Dir: dir, Fsync: FsyncNever})
				if err != nil {
					b.Fatal(err)
				}
				state, _, err := l.Recover()
				if err != nil {
					b.Fatal(err)
				}
				c, _ := newBenchCache(l)
				st, err := c.Restore(state)
				if err != nil {
					b.Fatal(err)
				}
				if st.Entries != n {
					b.Fatalf("recovered %d entries, want %d", st.Entries, n)
				}
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogAppend times the raw logging hook, the marginal cost a
// durable put adds before fsync policy effects.
func BenchmarkLogAppend(b *testing.B) {
	l, err := Open(Config{Dir: b.TempDir(), Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := core.StoreEntry{
		ID: 1, Function: "f", App: "app", CostNanos: 1e6, Size: 64,
		AccessCount: 1, InsertedAtNanos: 1, LastAccessNanos: 1,
		ExpiresAtNanos: 1 << 62,
		Keys:           []core.StoreKey{{KeyType: "scalar", Key: vec.Vector{1, 2, 3, 4}}},
		Value:          "value",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ID = uint64(i + 1)
		l.LogPut(rec)
	}
}
