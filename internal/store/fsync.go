package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Durable-write discipline. A rename alone does not survive power loss:
// the file's bytes may still be in the page cache, and the directory
// entry created by the rename is itself buffered metadata. Every
// publish therefore runs fsync(file) BEFORE the rename — so the name
// can never point at incomplete bytes — and fsync(parent directory)
// AFTER it, so the name itself is durable. The two hooks below let
// tests inject fsync failures without a filesystem that can fail on
// demand.

// syncFile and syncDir are indirection points for injected-failure
// tests; production always uses (*os.File).Sync.
var (
	syncFile = func(f *os.File) error { return f.Sync() }
	syncDir  = func(f *os.File) error { return f.Sync() }
)

// fsyncDir opens dir and fsyncs it, making recently created, renamed,
// or removed directory entries durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for fsync: %w", err)
	}
	err = syncDir(d)
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}

// AtomicWriteFile publishes data at path so that after a crash the path
// either does not exist or holds the complete contents: write to a temp
// file in the same directory, fsync it, rename over path, then fsync
// the parent directory. On any failure the temp file is removed and
// path is untouched.
//
// Exported for the other temp-file+rename writers in this repo (the
// service layer's SpillStore) so they share one fsync discipline.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	return fsyncDir(filepath.Dir(path))
}
