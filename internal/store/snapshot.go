package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/core"
)

// Snapshot file format:
//
//	"PLKSNP01"
//	framed snapMeta   — capture time, ID watermark, skip count, and every
//	                    function table (specs, tuner state, counters)
//	framed snapEntry… — one per live entry, same body as recPut
//	framed snapEnd    — entry count, doubling as a completeness check
//
// A snapshot missing its footer, with a count mismatch, or with any
// torn record is invalid as a whole; recovery falls back to the next
// older one. Publication goes through AtomicWriteFile, so a crash
// mid-write leaves only an ignored .tmp.

// appendFramed frames one payload: length, CRC, payload.
func appendFramed(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// nextRecord splits one framed record off b. ok is false at a clean end
// of input or a torn tail; torn distinguishes the two.
func nextRecord(b []byte) (payload, rest []byte, ok, torn bool) {
	if len(b) == 0 {
		return nil, nil, false, false
	}
	if len(b) < 8 {
		return nil, nil, false, true
	}
	n := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxRecord || uint64(n) > uint64(len(b)-8) {
		return nil, nil, false, true
	}
	payload = b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, nil, false, true
	}
	return payload, b[8+n:], true, false
}

// writeSnapshot encodes state and publishes it atomically at path.
func writeSnapshot(path string, state *core.DurableState) error {
	var scratch []byte
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapMagic...)

	scratch = appendSnapMeta(scratch[:0], state)
	buf = appendFramed(buf, scratch)

	written := 0
	for i := range state.Entries {
		var ok bool
		scratch, ok = appendEntryBody(append(scratch[:0], snapEntry), &state.Entries[i])
		if !ok {
			continue // caller counts these via state.Skipped
		}
		buf = appendFramed(buf, scratch)
		written++
	}

	scratch = binary.AppendUvarint(append(scratch[:0], snapEnd), uint64(written))
	buf = appendFramed(buf, scratch)

	return AtomicWriteFile(path, buf, 0o644)
}

func appendSnapMeta(b []byte, state *core.DurableState) []byte {
	b = append(b, snapMeta)
	b = binary.AppendVarint(b, state.CapturedAtNanos)
	b = binary.AppendUvarint(b, state.MaxID)
	b = binary.AppendUvarint(b, uint64(state.Skipped))
	b = binary.AppendUvarint(b, uint64(len(state.Functions)))
	for _, df := range state.Functions {
		b = appendString(b, df.Name)
		b = binary.AppendVarint(b, df.Puts)
		b = binary.AppendUvarint(b, uint64(len(df.KeyTypes)))
		for _, kt := range df.KeyTypes {
			b = appendKeyType(b, kt.StoreKeyType)
			b = appendTunerState(b, kt.Tuner)
			b = binary.AppendVarint(b, kt.Hits)
			b = binary.AppendVarint(b, kt.Misses)
			b = binary.AppendVarint(b, kt.Dropouts)
		}
	}
	return b
}

func (r *reader) snapMetaBody(state *core.DurableState) {
	state.CapturedAtNanos = r.varint()
	state.MaxID = r.uvarint()
	state.Skipped = int(r.uvarint())
	nf := r.uvarint()
	if r.err != nil || nf > uint64(len(r.b)) {
		r.fail("snapshot functions")
		return
	}
	state.Functions = make([]core.DurableFunction, 0, nf)
	for i := uint64(0); i < nf && r.err == nil; i++ {
		df := core.DurableFunction{Name: r.string(), Puts: r.varint()}
		nk := r.uvarint()
		if r.err != nil || nk > uint64(len(r.b)) {
			r.fail("snapshot key types")
			return
		}
		df.KeyTypes = make([]core.DurableKeyType, 0, nk)
		for j := uint64(0); j < nk && r.err == nil; j++ {
			df.KeyTypes = append(df.KeyTypes, core.DurableKeyType{
				StoreKeyType: r.keyType(),
				Tuner:        r.tunerState(),
				Hits:         r.varint(),
				Misses:       r.varint(),
				Dropouts:     r.varint(),
			})
		}
		state.Functions = append(state.Functions, df)
	}
}

// readSnapshot loads and validates one snapshot file. Any defect —
// bad magic, torn record, missing footer, count mismatch — invalidates
// the whole file.
func readSnapshot(path string) (*core.DurableState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: %s: bad snapshot magic", path)
	}
	data = data[len(snapMagic):]

	state := &core.DurableState{}
	sawMeta, sawEnd := false, false
	declared := uint64(0)
	for {
		payload, rest, ok, torn := nextRecord(data)
		if torn {
			return nil, fmt.Errorf("store: %s: torn snapshot record", path)
		}
		if !ok {
			break
		}
		data = rest
		if sawEnd {
			return nil, fmt.Errorf("store: %s: data after snapshot footer", path)
		}
		r := &reader{b: payload}
		switch typ := r.byte(); typ {
		case snapMeta:
			if sawMeta {
				return nil, fmt.Errorf("store: %s: duplicate snapshot header", path)
			}
			sawMeta = true
			r.snapMetaBody(state)
		case snapEntry:
			if !sawMeta {
				return nil, fmt.Errorf("store: %s: entry before snapshot header", path)
			}
			state.Entries = append(state.Entries, r.entryBody())
		case snapEnd:
			sawEnd = true
			declared = r.uvarint()
		default:
			return nil, fmt.Errorf("store: %s: unknown snapshot record type %d", path, typ)
		}
		if r.err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, r.err)
		}
	}
	if !sawMeta || !sawEnd {
		return nil, fmt.Errorf("store: %s: incomplete snapshot (missing %s)", path,
			map[bool]string{true: "footer", false: "header"}[sawMeta])
	}
	if declared != uint64(len(state.Entries)) {
		return nil, fmt.Errorf("store: %s: snapshot footer declares %d entries, found %d",
			path, declared, len(state.Entries))
	}
	return state, nil
}
