package service

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// startServer runs a server on a Unix socket in a temp dir and returns
// its address.
func startServer(t *testing.T, cfg core.Config) (*Server, string) {
	t.Helper()
	cache := core.New(cfg)
	srv := NewServer(cache)
	sock := filepath.Join(t.TempDir(), "potluck.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return srv, sock
}

func testConfig() core.Config {
	return core.Config{
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	}
}

func TestRoundTripRequestEncoding(t *testing.T) {
	req := &Request{
		Type:     MsgPut,
		App:      "lens",
		Function: "recognize",
		KeyType:  "kt",
		Key:      vec.Vector{1.5, -2.5},
		Keys: map[string]vec.Vector{
			"a": {1, 2},
			"b": {3},
		},
		KeyTypes: []KeyTypeDef{{Name: "a", Metric: "euclidean", Index: "kdtree", Dim: 4}},
		Value:    []byte("result"),
		Cost:     123456789,
		Size:     42,
		TTL:      int64(time.Hour),
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != req.App || got.Function != req.Function || got.KeyType != req.KeyType {
		t.Errorf("strings mangled: %+v", got)
	}
	if len(got.Key) != 2 || got.Key[1] != -2.5 {
		t.Errorf("key = %v", got.Key)
	}
	if len(got.Keys) != 2 || got.Keys["b"][0] != 3 {
		t.Errorf("keys = %v", got.Keys)
	}
	if len(got.KeyTypes) != 1 || got.KeyTypes[0].Dim != 4 {
		t.Errorf("key types = %v", got.KeyTypes)
	}
	if !bytes.Equal(got.Value, req.Value) || got.Cost != req.Cost || got.TTL != req.TTL {
		t.Errorf("payload fields mangled: %+v", got)
	}
}

func TestRoundTripReplyEncoding(t *testing.T) {
	r := &Reply{
		Type: MsgReplyLookup, Hit: true, Dropout: false,
		Value: []byte("v"), Distance: 1.25, Threshold: 2.5,
		MissedAt: 987654321, ID: 7,
		Stats: StatsPayload{Hits: 1, Misses: 2, Entries: 3, SavedComputeN: 4},
	}
	got, err := DecodeReply(EncodeReply(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Hit || got.Distance != 1.25 || got.Threshold != 2.5 || got.ID != 7 {
		t.Errorf("reply mangled: %+v", got)
	}
	if got.Stats.SavedComputeN != 4 {
		t.Errorf("stats mangled: %+v", got.Stats)
	}
}

// Property: request encoding round-trips arbitrary field contents.
func TestRequestEncodingProperty(t *testing.T) {
	f := func(app, fn string, key []float64, value []byte, cost int64) bool {
		req := &Request{
			Type: MsgLookup, App: app, Function: fn,
			Key: vec.Vector(key), Value: value, Cost: cost,
		}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		if got.App != app || got.Function != fn || got.Cost != cost {
			return false
		}
		if len(got.Key) != len(key) || !bytes.Equal(got.Value, value) {
			return false
		}
		for i := range key {
			if got.Key[i] != key[i] && !(got.Key[i] != got.Key[i] && key[i] != key[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncatedRequest(t *testing.T) {
	full := EncodeRequest(&Request{Type: MsgLookup, Function: "f", Key: vec.Vector{1, 2, 3}, Trace: 7})
	// The final 8 bytes are the OPTIONAL trailing trace ID: cutting into
	// them must still decode (that is the mixed-version contract — an old
	// encoder's frame is exactly full[:len-8]), just without a trace.
	mandatory := len(full) - 8
	for cut := 0; cut < mandatory; cut++ {
		if _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for cut := mandatory; cut < len(full); cut++ {
		req, err := DecodeRequest(full[:cut])
		if err != nil {
			t.Fatalf("old-format frame (cut %d) rejected: %v", cut, err)
		}
		if req.Trace != 0 {
			t.Fatalf("partial trace field (cut %d) decoded as %d", cut, req.Trace)
		}
	}
	if req, err := DecodeRequest(full); err != nil || req.Trace != 7 {
		t.Fatalf("full frame: trace %d, err %v", req.Trace, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxMessageSize+1)); err == nil {
		t.Error("oversized frame written")
	}
	// A hostile header must be rejected before allocation.
	var hdr = []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("hostile length prefix accepted")
	}
}

func TestServiceEndToEnd(t *testing.T) {
	_, sock := startServer(t, testConfig())
	cl, err := Dial("unix", sock, "lens")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Register("recognize", KeyTypeDef{Name: "down", Index: "kdtree"}); err != nil {
		t.Fatal(err)
	}
	key := vec.Vector{1, 2, 3}
	res, err := cl.Lookup("recognize", "down", key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("hit on empty cache")
	}
	if _, err := cl.Put("recognize", map[string]vec.Vector{"down": key}, []byte("cat"), PutOptions{Cost: time.Second}); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Lookup("recognize", "down", key)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || string(res.Value) != "cat" {
		t.Fatalf("lookup = %+v", res)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCrossAppSharingOverIPC is the paper's headline path end-to-end:
// two separate clients (apps) share one cached result through the
// service.
func TestCrossAppSharingOverIPC(t *testing.T) {
	srv, sock := startServer(t, testConfig())
	lens, err := Dial("unix", sock, "google-lens")
	if err != nil {
		t.Fatal(err)
	}
	defer lens.Close()
	nav, err := Dial("unix", sock, "indoor-nav")
	if err != nil {
		t.Fatal(err)
	}
	defer nav.Close()

	if err := lens.Register("objectRecognition", KeyTypeDef{Name: "down"}); err != nil {
		t.Fatal(err)
	}
	if err := nav.Register("objectRecognition", KeyTypeDef{Name: "down"}); err != nil {
		t.Fatal(err)
	}
	key := vec.Vector{0.5, 0.5}
	if _, err := lens.Put("objectRecognition", map[string]vec.Vector{"down": key}, []byte("stop sign"), PutOptions{Cost: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Widen the threshold so a nearby key from the other app hits.
	if err := srv.Cache().ForceThreshold("objectRecognition", "down", 0.2); err != nil {
		t.Fatal(err)
	}
	res, err := nav.Lookup("objectRecognition", "down", vec.Vector{0.55, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || string(res.Value) != "stop sign" {
		t.Fatalf("cross-app lookup = %+v", res)
	}
}

func TestServiceErrorsSurface(t *testing.T) {
	_, sock := startServer(t, testConfig())
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Lookup("unregistered", "kt", vec.Vector{1}); err == nil ||
		!strings.Contains(err.Error(), "unknown function") {
		t.Errorf("lookup error = %v", err)
	}
	if err := cl.Register("f"); err == nil {
		t.Error("register with no key types accepted")
	}
	if err := cl.Register("f", KeyTypeDef{Name: "k", Metric: "bogus"}); err == nil {
		t.Error("bogus metric accepted")
	}
	if err := cl.Register("f", KeyTypeDef{Name: "k", Index: "bogus"}); err == nil {
		t.Error("bogus index accepted")
	}
}

func TestServiceMissedAtCostAccounting(t *testing.T) {
	srv, sock := startServer(t, testConfig())
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Lookup("f", "k", vec.Vector{1})
	if err != nil || res.Hit {
		t.Fatalf("lookup: %+v err=%v", res, err)
	}
	cost := 30 * time.Millisecond
	time.Sleep(cost) // the "computation"
	if _, err := cl.Put("f", map[string]vec.Vector{"k": {1}}, []byte("v"),
		PutOptions{Cost: time.Since(res.MissedAt)}); err != nil {
		t.Fatal(err)
	}
	st, _ := cl.Stats()
	if st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The recorded cost shows up in SavedCompute after a hit.
	if _, err := cl.Lookup("f", "k", vec.Vector{1}); err != nil {
		t.Fatal(err)
	}
	cst := srv.Cache().Stats()
	if cst.SavedCompute < cost {
		t.Errorf("SavedCompute = %v, want ≥ %v", cst.SavedCompute, cost)
	}
}

func TestServiceConcurrentClients(t *testing.T) {
	_, sock := startServer(t, testConfig())
	boot, err := Dial("unix", sock, "boot")
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	boot.Close()

	const clients = 6
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			cl, err := Dial("unix", sock, "app")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				key := vec.Vector{float64((g*50 + i) % 20)}
				res, err := cl.Lookup("f", "k", key)
				if err != nil {
					errs <- err
					return
				}
				if !res.Hit {
					if _, err := cl.Put("f", map[string]vec.Vector{"k": key}, []byte{byte(g)}, PutOptions{}); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMalformedFrameDropsClientOnly(t *testing.T) {
	_, sock := startServer(t, testConfig())
	// A raw connection sends garbage; the server must drop it without
	// affecting other clients.
	raw, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	raw.Close()

	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatalf("healthy client affected: %v", err)
	}
}

func TestSpillStore(t *testing.T) {
	s, err := NewSpillStore(filepath.Join(t.TempDir(), "spill"), 8)
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Put([]byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Put(bytes.Repeat([]byte("x"), 100))
	if err != nil {
		t.Fatal(err)
	}
	inMem, onDisk := s.Stats()
	if inMem != 1 || onDisk != 1 {
		t.Errorf("stats = %d/%d, want 1/1", inMem, onDisk)
	}
	v, err := s.Get(small)
	if err != nil || string(v) != "tiny" {
		t.Errorf("small get = %q, %v", v, err)
	}
	v, err = s.Get(big)
	if err != nil || len(v) != 100 {
		t.Errorf("big get = %d bytes, %v", len(v), err)
	}
	if err := s.Delete(big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(big); err == nil {
		t.Error("deleted entry still readable")
	}
	if err := s.Delete(9999); err != nil {
		t.Errorf("deleting absent entry: %v", err)
	}
}
