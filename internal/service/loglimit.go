package service

import (
	"fmt"
	"sync"
	"time"
)

// logLimiter rate-limits diagnostic logging with a per-key token
// bucket. The hot error paths — oversize frames, deadline evictions,
// connection-cap rejects — fire once per misbehaving peer action, so a
// hostile or broken client could otherwise turn Logf into the most
// expensive code path in the server. Each key gets a small burst and a
// steady refill; lines over budget are dropped and counted, and the
// next line that gets through reports how many were suppressed.
type logLimiter struct {
	burst  float64
	refill float64 // tokens per second
	now    func() time.Time

	mu      sync.Mutex
	buckets map[string]*logBucket
}

type logBucket struct {
	tokens     float64
	last       time.Time
	suppressed int64
}

// newLogLimiter builds a limiter allowing burst lines immediately and
// perSec lines per second sustained, per key. A nil now uses time.Now
// (injectable for tests).
func newLogLimiter(burst, perSec float64, now func() time.Time) *logLimiter {
	if now == nil {
		now = time.Now
	}
	return &logLimiter{
		burst:   burst,
		refill:  perSec,
		now:     now,
		buckets: make(map[string]*logBucket),
	}
}

// allow charges one token against key. It reports whether the caller
// may log and, when it may, how many earlier lines under the same key
// were suppressed since the last one that got through.
func (l *logLimiter) allow(key string) (ok bool, suppressed int64) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &logBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.refill
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		b.suppressed++
		return false, 0
	}
	b.tokens--
	suppressed = b.suppressed
	b.suppressed = 0
	return true, suppressed
}

// logfLimited logs through Logf subject to the per-key rate limiter.
// Suppressed lines are counted on the telemetry registry when the
// server is instrumented.
func (s *Server) logfLimited(key, format string, args ...any) {
	if s.Logf == nil {
		return
	}
	ok, suppressed := s.limiter.allow(key)
	if !ok {
		if s.met != nil {
			s.met.suppressedLogs.Inc()
		}
		return
	}
	if suppressed > 0 {
		format += fmt.Sprintf(" (%d similar lines suppressed)", suppressed)
	}
	s.Logf(format, args...)
}
