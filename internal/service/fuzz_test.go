package service

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// FuzzDecodeRequest hardens the wire decoder against arbitrary bytes:
// it must never panic, and anything it accepts must re-encode and
// re-decode to the same structure (decode∘encode idempotence).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Type: MsgLookup, Function: "f", KeyType: "k", Key: vec.Vector{1, 2}}))
	f.Add(EncodeRequest(&Request{
		Type: MsgPut, App: "a", Function: "f",
		Keys:  map[string]vec.Vector{"x": {3}},
		Value: []byte("v"), Cost: 5, TTL: 7,
	}))
	f.Add(EncodeRequest(&Request{
		Type:     MsgRegister,
		Function: "f",
		KeyTypes: []KeyTypeDef{{Name: "k", Metric: "euclidean", Index: "kdtree", Dim: 2}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Error-path seeds: unknown message type, zero-length vectors.
	f.Add(EncodeRequest(&Request{Type: 99, Function: "f"}))
	f.Add(EncodeRequest(&Request{Type: MsgLookup, Function: "f", KeyType: "k", Key: vec.Vector{}}))
	f.Add(EncodeRequest(&Request{Type: MsgPut, Function: "f", Keys: map[string]vec.Vector{"k": {}}}))
	// Boundary-length seeds: field lengths near MaxUint32 must be
	// rejected by the uint64 comparisons, not wrapped on 32-bit ints.
	f.Add(hostileLengthFrame(0xFFFFFFFF)) // string length = MaxUint32
	f.Add(hostileLengthFrame(0x80000000)) // length = MinInt32 as uint
	f.Add(hostileLengthFrame(0x7FFFFFFF)) // length = MaxInt32
	f.Add(hostileVectorFrame(0x20000001)) // 8*n overflows int32
	f.Add(hostileVectorFrame(0xFFFFFFFF))
	f.Add(hostileMapCountFrame(0xFFFFFFFF))
	// Batch envelopes ride through DecodeRequest as opaque Value bytes;
	// seed one so the fuzzer explores the envelope path too.
	f.Add(EncodeRequest(&Request{
		Type: MsgMultiLookup, App: "a",
		Value: EncodeLookupSubs([]LookupSub{{Function: "f", KeyType: "k", Key: vec.Vector{1}}}),
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re := EncodeRequest(req)
		req2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeRequest(req2), re) {
			t.Fatal("encode not stable across round trips")
		}
	})
}

// FuzzDecodeReply mirrors FuzzDecodeRequest for the reply direction.
func FuzzDecodeReply(f *testing.F) {
	f.Add(EncodeReply(&Reply{Type: MsgReplyLookup, Hit: true, Value: []byte("v"), Distance: 1.5}))
	f.Add(EncodeReply(&Reply{Type: MsgReplyError, Error: "boom"}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		reply, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := EncodeReply(reply)
		if _, err := DecodeReply(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzReadFrame checks the framing layer against hostile prefixes.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, []byte("payload"))
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxMessageSize {
			t.Fatalf("oversized payload accepted: %d", len(payload))
		}
	})
}

// hostileLengthFrame builds a request payload whose App-string length
// field is the given value with almost no bytes behind it.
func hostileLengthFrame(n uint32) []byte {
	buf := []byte{byte(MsgLookup)}
	buf = binary.BigEndian.AppendUint32(buf, n)
	return append(buf, 'x')
}

// hostileVectorFrame builds a request payload whose Key vector length
// field is the given value (App/Function/KeyType empty).
func hostileVectorFrame(n uint32) []byte {
	buf := []byte{byte(MsgLookup)}
	for i := 0; i < 3; i++ { // empty App, Function, KeyType
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, n)
	return append(buf, 1, 2, 3, 4, 5, 6, 7, 8)
}

// hostileMapCountFrame builds a request payload whose Keys map count is
// the given value.
func hostileMapCountFrame(n uint32) []byte {
	buf := []byte{byte(MsgPut)}
	for i := 0; i < 4; i++ { // empty App, Function, KeyType, Key
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, n)
	return append(buf, 0, 0, 0, 0)
}

// frame prefixes a payload with its length header, bypassing WriteFrame's
// size check so hostile prefixes can be synthesized.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// FuzzServerStream drives a live connection handler with arbitrary bytes:
// whatever arrives — truncated frames, oversize prefixes, unknown message
// types, zero-length vectors, garbage — the handler must neither panic
// nor hang, and every reply it does emit must decode.
func FuzzServerStream(f *testing.F) {
	f.Add(frame(EncodeRequest(&Request{
		Type: MsgRegister, Function: "f",
		KeyTypes: []KeyTypeDef{{Name: "k"}},
	})))
	f.Add(frame(EncodeRequest(&Request{Type: MsgStats})))
	f.Add(frame(EncodeRequest(&Request{Type: 99})))                                               // unknown type
	f.Add(frame(EncodeRequest(&Request{Type: MsgLookup, Function: "f", Key: vec.Vector{}})))      // zero-length vector
	f.Add(frame(EncodeRequest(&Request{Type: MsgLookup, Function: "f", Key: vec.Vector{1}}))[:7]) // truncated frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})                                                // oversize length prefix
	f.Add([]byte{0, 0, 0})                                                                        // short header
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServerConfig(core.New(core.Config{DisableDropout: true}), ServerConfig{
			IdleTimeout: 200 * time.Millisecond,
			ReadTimeout: 200 * time.Millisecond,
		})
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handleConn(server, &connState{})
		}()
		// Drain replies concurrently (net.Pipe is unbuffered, so an
		// unread reply would wedge the handler) and check each decodes.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for {
				payload, err := ReadFrame(client)
				if err != nil {
					return
				}
				if _, err := DecodeReply(payload); err != nil {
					t.Errorf("server emitted undecodable reply: %v", err)
				}
			}
		}()
		client.Write(data)
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("connection handler hung on hostile input")
		}
		<-drained
	})
}

// FuzzClientReply drives the client's reply path with arbitrary bytes
// standing in for the server: the round trip must fail cleanly or
// succeed, never panic or hang, and an undecodable reply must poison the
// connection.
func FuzzClientReply(f *testing.F) {
	f.Add(frame(EncodeReply(&Reply{Type: MsgReplyLookup, Hit: true, Value: []byte("v")})))
	f.Add(frame(EncodeReply(&Reply{Type: MsgReplyError, Error: "boom"})))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		cconn, sconn := net.Pipe()
		cl := NewClientConn(cconn, "fuzz")
		cl.cfg.RequestTimeout = 500 * time.Millisecond
		go func() {
			// Absorb the request, answer with the fuzzed bytes, hang up.
			io.ReadFull(sconn, make([]byte, 4))
			sconn.Write(data)
			sconn.Close()
		}()
		done := make(chan struct{})
		go func() {
			defer close(done)
			cl.Lookup("f", "k", vec.Vector{1})
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("client round trip hung on hostile reply")
		}
		cl.Close()
	})
}
