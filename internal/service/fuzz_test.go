package service

import (
	"bytes"
	"testing"

	"repro/internal/vec"
)

// FuzzDecodeRequest hardens the wire decoder against arbitrary bytes:
// it must never panic, and anything it accepts must re-encode and
// re-decode to the same structure (decode∘encode idempotence).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Type: MsgLookup, Function: "f", KeyType: "k", Key: vec.Vector{1, 2}}))
	f.Add(EncodeRequest(&Request{
		Type: MsgPut, App: "a", Function: "f",
		Keys:  map[string]vec.Vector{"x": {3}},
		Value: []byte("v"), Cost: 5, TTL: 7,
	}))
	f.Add(EncodeRequest(&Request{
		Type:     MsgRegister,
		Function: "f",
		KeyTypes: []KeyTypeDef{{Name: "k", Metric: "euclidean", Index: "kdtree", Dim: 2}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re := EncodeRequest(req)
		req2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeRequest(req2), re) {
			t.Fatal("encode not stable across round trips")
		}
	})
}

// FuzzDecodeReply mirrors FuzzDecodeRequest for the reply direction.
func FuzzDecodeReply(f *testing.F) {
	f.Add(EncodeReply(&Reply{Type: MsgReplyLookup, Hit: true, Value: []byte("v"), Distance: 1.5}))
	f.Add(EncodeReply(&Reply{Type: MsgReplyError, Error: "boom"}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		reply, err := DecodeReply(data)
		if err != nil {
			return
		}
		re := EncodeReply(reply)
		if _, err := DecodeReply(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzReadFrame checks the framing layer against hostile prefixes.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, []byte("payload"))
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxMessageSize {
			t.Fatalf("oversized payload accepted: %d", len(payload))
		}
	})
}
