package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vec"
)

// Server is the Potluck background service: it owns the cache, accepts
// application connections, and serves Register/Lookup/Put/Stats
// requests. It mirrors the paper's module split (Figure 4): the accept
// loop and per-connection handlers are the AppListener ("maintains a
// threadpool, handles the requests from upper-level applications"), the
// cache with its expiry janitor is the CacheManager, and core.Cache's
// entry store is the DataStorage.
type Server struct {
	cache *core.Cache
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a cache in a service.
func NewServer(cache *core.Cache) *Server {
	return &Server{cache: cache, conns: make(map[net.Conn]struct{})}
}

// Cache returns the underlying cache (for in-process inspection).
func (s *Server) Cache() *core.Cache { return s.cache }

// Serve accepts connections on l until Close or ctx cancellation. It
// also runs the expiry janitor for the duration.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("service: server closed")
	}
	s.listener = l
	s.mu.Unlock()

	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		core.NewJanitor(s.cache).Run(jctx)
	}()

	// The watcher must exit when Serve returns for any reason (Close,
	// accept error), not only on ctx cancellation — a bare <-ctx.Done()
	// would leak one goroutine per Serve call under a long-lived ctx.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-done:
		}
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handleConn serves one application connection; requests on a connection
// are processed sequentially (Binder transactions are synchronous per
// caller thread).
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return // disconnect or malformed frame: drop the client
		}
		req, err := DecodeRequest(payload)
		var reply *Reply
		if err != nil {
			reply = &Reply{Type: MsgReplyError, Error: err.Error()}
		} else {
			reply = s.dispatch(req)
		}
		if err := WriteFrame(conn, EncodeReply(reply)); err != nil {
			s.logf("service: write reply: %v", err)
			return
		}
	}
}

// dispatch executes one request against the cache.
func (s *Server) dispatch(req *Request) *Reply {
	switch req.Type {
	case MsgRegister:
		return s.handleRegister(req)
	case MsgLookup:
		return s.handleLookup(req)
	case MsgPut:
		return s.handlePut(req)
	case MsgStats:
		return s.handleStats()
	default:
		return &Reply{Type: MsgReplyError, Error: fmt.Sprintf("unknown request type %d", req.Type)}
	}
}

func (s *Server) handleRegister(req *Request) *Reply {
	specs := make([]core.KeyTypeSpec, 0, len(req.KeyTypes))
	for _, def := range req.KeyTypes {
		metric, err := vec.MetricByName(def.Metric)
		if err != nil {
			return &Reply{Type: MsgReplyError, Error: err.Error()}
		}
		kind := index.Kind(def.Index)
		if kind == "" {
			kind = index.KindKDTree
		}
		specs = append(specs, core.KeyTypeSpec{
			Name:   def.Name,
			Metric: metric,
			Index:  kind,
			Dim:    int(def.Dim),
		})
	}
	if err := s.cache.RegisterFunction(req.Function, specs...); err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error()}
	}
	return &Reply{Type: MsgReplyOK}
}

func (s *Server) handleLookup(req *Request) *Reply {
	res, err := s.cache.Lookup(req.Function, req.KeyType, req.Key)
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error()}
	}
	reply := &Reply{
		Type:      MsgReplyLookup,
		Hit:       res.Hit,
		Dropout:   res.Dropout,
		Distance:  res.Distance,
		Threshold: res.Threshold,
		MissedAt:  res.MissedAt.UnixNano(),
	}
	if res.Hit {
		b, ok := res.Value.([]byte)
		if !ok {
			// In-process puts may store non-byte values; those entries
			// are invisible to remote lookups rather than fatal.
			reply.Hit = false
			return reply
		}
		reply.Value = b
	}
	return reply
}

func (s *Server) handlePut(req *Request) *Reply {
	putReq := core.PutRequest{
		Keys:  req.Keys,
		Value: req.Value,
		Cost:  time.Duration(req.Cost),
		Size:  int(req.Size),
		TTL:   time.Duration(req.TTL),
		App:   req.App,
	}
	id, err := s.cache.Put(req.Function, putReq)
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error()}
	}
	return &Reply{Type: MsgReplyPut, ID: uint64(id)}
}

func (s *Server) handleStats() *Reply {
	st := s.cache.Stats()
	return &Reply{Type: MsgReplyStats, Stats: StatsPayload{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Dropouts:      st.Dropouts,
		Puts:          st.Puts,
		Evictions:     st.Evictions,
		Expirations:   st.Expirations,
		Entries:       int64(st.Entries),
		Bytes:         st.Bytes,
		SavedComputeN: int64(st.SavedCompute),
	}}
}

// ListenAndServe listens on the given network/address ("unix" +
// socket path, or "tcp" + host:port) and serves until ctx is cancelled.
func (s *Server) ListenAndServe(ctx context.Context, network, addr string) error {
	l, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}
