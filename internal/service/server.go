package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// ServerConfig tunes the service's robustness limits. The zero value
// selects production defaults; negative values disable the
// corresponding limit.
type ServerConfig struct {
	// IdleTimeout is how long a connection may take to deliver the next
	// request's frame header, measured from the end of the previous
	// request. It evicts both idle connections and slow-loris peers that
	// trickle header bytes. 0 = 2m; < 0 = no limit.
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one request body once its header has
	// arrived. 0 = 10s; < 0 = no limit.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one reply. 0 = 10s; < 0 = no limit.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; accepts beyond the
	// cap are closed immediately. 0 = 1024; < 0 = unlimited.
	MaxConns int
	// MaxHandlers caps requests executing against the cache at once —
	// the width of the paper's AppListener threadpool (§4.1). Connections
	// beyond it queue for a slot instead of spawning unbounded work.
	// 0 = 256; < 0 = unlimited.
	MaxHandlers int
	// DrainTimeout is how long Close waits for in-flight requests to
	// finish before force-closing their connections. Idle connections are
	// closed immediately. 0 = 5s; < 0 = wait forever.
	DrainTimeout time.Duration
	// NodeID is this node's mesh identity, echoed in the MsgPeerInfo
	// handshake. Empty is fine for a standalone daemon.
	NodeID string
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxHandlers == 0 {
		cfg.MaxHandlers = 256
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return cfg
}

// Server is the Potluck background service: it owns the cache, accepts
// application connections, and serves Register/Lookup/Put/Stats
// requests. It mirrors the paper's module split (Figure 4): the accept
// loop and the bounded handler pool are the AppListener ("maintains a
// threadpool, handles the requests from upper-level applications"), the
// cache with its expiry janitor is the CacheManager, and core.Cache's
// entry store is the DataStorage.
//
// Every connection carries per-request idle/read/write deadlines, the
// connection count and concurrent handler count are capped, and Close
// drains in-flight requests before cutting connections — the service
// degrades under slow, dead, or hostile peers instead of accumulating
// stuck goroutines.
type Server struct {
	cache *core.Cache
	cfg   ServerConfig
	// Logf receives diagnostic messages; nil silences them.
	Logf func(format string, args ...any)

	// sem is the handler pool: one slot per concurrently executing
	// request; nil when unlimited.
	sem chan struct{}

	// met holds the telemetry series; nil until Instrument. It is set
	// before Serve and read without a lock by the request path.
	met *serverMetrics

	// remote, when set, is the cluster tier: consulted on local lookup
	// misses and offered admitted puts for replication. Set before Serve
	// via SetRemote; read without a lock by the request path.
	remote RemoteTier

	// limiter rate-limits Logf on hot error paths (oversize frames,
	// deadline evictions, connection-cap rejects).
	limiter *logLimiter

	// testHookDispatch, when set, runs inside the handler slot before the
	// request executes; fault-injection tests use it to hold requests
	// in flight deterministically.
	testHookDispatch func(*Request)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// connState tracks whether a connection is executing a request (busy) or
// waiting for the next one; drain closes idle connections immediately
// and lets busy ones finish their current reply.
type connState struct {
	busy bool
}

// NewServer wraps a cache in a service with default limits.
func NewServer(cache *core.Cache) *Server {
	return NewServerConfig(cache, ServerConfig{})
}

// NewServerConfig wraps a cache in a service with explicit limits.
func NewServerConfig(cache *core.Cache, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cache:   cache,
		cfg:     cfg,
		conns:   make(map[net.Conn]*connState),
		limiter: newLogLimiter(5, 1, nil),
	}
	if cfg.MaxHandlers > 0 {
		s.sem = make(chan struct{}, cfg.MaxHandlers)
	}
	return s
}

// RemoteTier is the cluster mesh as the server sees it: a second tier
// consulted after the local cache. Implementations absorb their own
// failures — a dead or slow peer degrades a lookup to its local outcome
// and is never surfaced to the application as an error.
//
// The server only consults the tier for application traffic: requests
// whose App name carries PeerAppPrefix came from another mesh node and
// stay strictly local, so routing can never loop or amplify.
type RemoteTier interface {
	// RemoteLookup resolves one local miss against the key's owner
	// peers. ok reports a remote hit; the reply carries the owner's
	// value and decision inputs. trace is the span trace ID the lookup
	// runs under (0 = untraced).
	RemoteLookup(function, keyType string, key vec.Vector, trace uint64) (LookupSubReply, bool)
	// RemoteMultiLookup resolves a batch of local misses. The result is
	// index-aligned with subs; entries that stayed misses have Hit
	// false.
	RemoteMultiLookup(subs []LookupSub) []LookupSubReply
	// ReplicatePut offers locally admitted puts for K-way replication to
	// their owner peers. It must not block beyond one peer round trip
	// (the first ack); further fan-out is fire-and-forget.
	ReplicatePut(subs []PutSub)
}

// SetRemote installs the cluster tier. Call before Serve.
func (s *Server) SetRemote(r RemoteTier) { s.remote = r }

// Cache returns the underlying cache (for in-process inspection).
func (s *Server) Cache() *core.Cache { return s.cache }

// Config returns the limits in force (defaults applied).
func (s *Server) Config() ServerConfig { return s.cfg }

// Serve accepts connections on l until Close or ctx cancellation. It
// also runs the expiry janitor for the duration.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("service: server closed")
	}
	s.listener = l
	s.mu.Unlock()

	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		core.NewJanitor(s.cache).Run(jctx)
	}()

	// The watcher must exit when Serve returns for any reason (Close,
	// accept error), not only on ctx cancellation — a bare <-ctx.Done()
	// would leak one goroutine per Serve call under a long-lived ctx.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-done:
		}
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			if s.met != nil {
				s.met.rejectedConns.Inc()
			}
			s.logfLimited("conn-cap", "service: connection cap %d reached; rejecting %v", s.cfg.MaxConns, conn.RemoteAddr())
			conn.Close()
			continue
		}
		st := &connState{}
		s.conns[conn] = st
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn, st)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops accepting and shuts the service down gracefully: idle
// connections are closed immediately, in-flight requests get
// DrainTimeout to finish their reply, and whatever remains after that is
// force-closed. Close returns once every handler has exited.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.draining = true
	l := s.listener
	idle := make([]net.Conn, 0, len(s.conns))
	for c, st := range s.conns {
		if !st.busy {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()

	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range idle {
		c.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	if s.cfg.DrainTimeout > 0 {
		select {
		case <-drained:
			return err
		case <-time.After(s.cfg.DrainTimeout):
			s.mu.Lock()
			n := len(s.conns)
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			if n > 0 {
				s.logf("service: drain timeout after %s; cut %d connections", s.cfg.DrainTimeout, n)
			}
		}
	}
	<-drained
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// readRequest reads one request frame under the idle/read deadlines.
func (s *Server) readRequest(conn net.Conn) ([]byte, error) {
	if d := s.cfg.IdleTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooLarge, n)
	}
	// The header is in; the body gets its own (typically tighter) budget
	// so a peer cannot stretch one request to IdleTimeout per byte.
	if d := s.cfg.ReadTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	return buf, nil
}

// writeReply writes one reply frame under the write deadline.
func (s *Server) writeReply(conn net.Conn, reply *Reply) error {
	if d := s.cfg.WriteTimeout; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return WriteFrame(conn, EncodeReply(reply))
}

// setBusy flips the connection's drain classification.
func (s *Server) setBusy(st *connState, busy bool) {
	s.mu.Lock()
	st.busy = busy
	s.mu.Unlock()
}

// handleConn serves one application connection; requests on a connection
// are processed sequentially (Binder transactions are synchronous per
// caller thread), but execute through the shared bounded handler pool.
func (s *Server) handleConn(conn net.Conn, st *connState) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := s.readRequest(conn)
		if err != nil {
			switch {
			case errors.Is(err, ErrMessageTooLarge):
				// Tell the peer why before hanging up; the stream past an
				// oversize prefix is unreadable, so the connection is done
				// either way, but the client sees a reason instead of a
				// silent disconnect.
				s.writeReply(conn, &Reply{Type: MsgReplyError, Error: err.Error()})
				s.countDroppedConn()
				s.logfLimited("oversize", "service: %v: %v", conn.RemoteAddr(), err)
			case isTimeout(err):
				s.countDroppedConn()
				s.logfLimited("deadline", "service: %v: evicted on deadline: %v", conn.RemoteAddr(), err)
			}
			return // disconnect, timeout, or malformed frame: drop the client
		}
		s.setBusy(st, true)
		req, err := DecodeRequest(payload)
		var reply *Reply
		if err != nil {
			if s.met != nil {
				s.met.decodeErrs.Inc()
			}
			reply = &Reply{Type: MsgReplyError, Error: err.Error()}
		} else {
			reply = s.dispatchBounded(req)
		}
		err = s.writeReply(conn, reply)
		if errors.Is(err, ErrMessageTooLarge) {
			// WriteFrame rejects an oversize payload before writing a single
			// byte, so the stream is still frame-aligned — degrade to an
			// in-band error instead of cutting a healthy connection. (A batch
			// of large hits can legitimately overflow one reply frame.)
			err = s.writeReply(conn, &Reply{Type: MsgReplyError, Error: ErrMessageTooLarge.Error(), Trace: reply.Trace})
		}
		s.setBusy(st, false)
		if err != nil {
			s.countDroppedConn()
			s.logfLimited("write-reply", "service: write reply: %v", err)
			return
		}
		if s.isDraining() {
			return
		}
	}
}

// dispatchBounded executes one request through the handler pool. When
// instrumented it times the dispatch (handler-pool wait included — queue
// delay under load is exactly what the latency histogram is for) and
// counts the outcome.
func (s *Server) dispatchBounded(req *Request) *Reply {
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	if s.testHookDispatch != nil {
		s.testHookDispatch(req)
	}
	reply := s.dispatch(req)
	if s.met != nil {
		dur := time.Since(start)
		ser := s.met.ops[opName(req.Type)]
		ser.lat.Observe(dur)
		if reply.Type == MsgReplyError {
			ser.errs.Inc()
		} else {
			ser.ok.Inc()
		}
		if req.Trace != 0 && s.met.spans != nil {
			// A traced request records a server-layer span under the
			// caller's trace ID (the serve stage covers handler-pool wait
			// plus cache work) and stamps the op histogram's exemplar so a
			// /metrics bucket resolves to this trace.
			s.met.spans.Record(telemetry.Span{
				Trace:       telemetry.TraceID(req.Trace),
				Start:       start.UnixNano(),
				DurationNs:  int64(dur),
				Layer:       "server",
				Function:    req.Function,
				KeyType:     req.KeyType,
				Outcome:     replyOutcome(reply),
				Err:         reply.Error,
				Distance:    replyDistance(reply),
				Threshold:   reply.Threshold,
				DropoutRoll: -1,
				Probes:      -1,
				Stages: []telemetry.SpanStage{{
					Name: telemetry.StageServe, DurationNs: int64(dur), Detail: opName(req.Type),
				}},
			})
			ser.lat.SetExemplar(dur, telemetry.TraceID(req.Trace))
		}
	}
	return reply
}

// replyOutcome maps a wire reply to a span outcome.
func replyOutcome(r *Reply) string {
	switch {
	case r.Type == MsgReplyError:
		return telemetry.OutcomeError
	case r.Type == MsgReplyPut:
		return telemetry.OutcomePut
	case r.Type != MsgReplyLookup:
		return "ok"
	case r.Dropout:
		return telemetry.OutcomeDropout
	case r.Hit:
		return telemetry.OutcomeHit
	default:
		return telemetry.OutcomeMiss
	}
}

// replyDistance pulls the decision distance from lookup replies (-1 for
// other ops, matching the unmeasured convention).
func replyDistance(r *Reply) float64 {
	if r.Type == MsgReplyLookup {
		return r.Distance
	}
	return -1
}

// countDroppedConn counts a connection cut mid-stream.
func (s *Server) countDroppedConn() {
	if s.met != nil {
		s.met.droppedConns.Inc()
	}
}

// isTimeout reports whether err is a connection deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch executes one request against the cache.
func (s *Server) dispatch(req *Request) *Reply {
	switch req.Type {
	case MsgRegister:
		return s.handleRegister(req)
	case MsgLookup:
		return s.handleLookup(req)
	case MsgPut:
		return s.handlePut(req)
	case MsgStats:
		return s.handleStats()
	case MsgMultiLookup:
		return s.handleMultiLookup(req)
	case MsgMultiPut:
		return s.handleMultiPut(req)
	case MsgPeerInfo:
		return s.handlePeerInfo(req)
	default:
		return &Reply{Type: MsgReplyError, Error: fmt.Sprintf("unknown request type %d", req.Type)}
	}
}

func (s *Server) handleRegister(req *Request) *Reply {
	specs := make([]core.KeyTypeSpec, 0, len(req.KeyTypes))
	for _, def := range req.KeyTypes {
		metric, err := vec.MetricByName(def.Metric)
		if err != nil {
			return &Reply{Type: MsgReplyError, Error: err.Error()}
		}
		kind := index.Kind(def.Index)
		if kind == "" {
			kind = index.KindKDTree
		}
		specs = append(specs, core.KeyTypeSpec{
			Name:   def.Name,
			Metric: metric,
			Index:  kind,
			Dim:    int(def.Dim),
		})
	}
	if err := s.cache.RegisterFunction(req.Function, specs...); err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error()}
	}
	return &Reply{Type: MsgReplyOK}
}

// isByteValue restricts remote lookups to entries they can actually
// consume: in-process puts may store arbitrary values, which cannot
// cross the wire.
func isByteValue(v any) bool {
	_, ok := v.([]byte)
	return ok
}

func (s *Server) handleLookup(req *Request) *Reply {
	// LookupAccept (not Lookup) so an entry this caller can never receive
	// is a true miss: no hit counted, no access-frequency or importance
	// credit for the entry.
	res, err := s.cache.LookupOpts(req.Function, req.KeyType, req.Key, core.LookupOptions{
		Accept: isByteValue,
		Trace:  telemetry.TraceID(req.Trace),
	})
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error(), Trace: req.Trace}
	}
	reply := &Reply{
		Type:      MsgReplyLookup,
		Hit:       res.Hit,
		Dropout:   res.Dropout,
		Distance:  res.Distance,
		Threshold: res.Threshold,
		MissedAt:  res.MissedAt.UnixNano(),
		// Echo the trace the cache recorded under (the request's ID, or
		// one the cache minted for a sampled lookup) so the caller can
		// resolve it against /trace/spans.
		Trace: uint64(res.Trace),
	}
	if res.Hit {
		reply.Value = res.Value.([]byte)
		return reply
	}
	// A local miss from an application falls through to the cluster
	// tier; dropouts propagate as real misses (the quality control must
	// stay honest across nodes), and peer-originated lookups never re-fan
	// (the sender already routed to an owner).
	if !res.Dropout && s.remote != nil && !IsPeerApp(req.App) {
		trace := uint64(res.Trace)
		if trace == 0 {
			trace = req.Trace
		}
		if sr, ok := s.remote.RemoteLookup(req.Function, req.KeyType, req.Key, trace); ok {
			reply.Hit = true
			reply.Value = sr.Value
			reply.Distance = sr.Distance
			reply.Threshold = sr.Threshold
			// MissedAt stays the local miss time: the caller's cost
			// accounting is against this node's clock.
		}
	}
	return reply
}

// handlePeerInfo answers the mesh handshake with this node's identity.
func (s *Server) handlePeerInfo(req *Request) *Reply {
	if _, err := DecodePeerInfo(req.Value); err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error(), Trace: req.Trace}
	}
	return &Reply{
		Type: MsgReplyPeerInfo,
		Value: EncodePeerInfo(&PeerInfo{
			Version: MeshProtocolVersion,
			NodeID:  s.cfg.NodeID,
		}),
		Trace: req.Trace,
	}
}

func (s *Server) handlePut(req *Request) *Reply {
	putReq := core.PutRequest{
		Keys:  req.Keys,
		Value: req.Value,
		Cost:  time.Duration(req.Cost),
		Size:  int(req.Size),
		TTL:   time.Duration(req.TTL),
		App:   req.App,
		Trace: telemetry.TraceID(req.Trace),
	}
	id, err := s.cache.Put(req.Function, putReq)
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error(), Trace: req.Trace}
	}
	// An admitted application put is offered to the cluster tier for
	// K-way replication; peer-originated puts (replication traffic) stay
	// local or the mesh would re-replicate its own writes forever.
	if s.remote != nil && !IsPeerApp(req.App) {
		s.remote.ReplicatePut([]PutSub{{
			Function: req.Function,
			Keys:     req.Keys,
			Value:    req.Value,
			Cost:     req.Cost,
			Size:     req.Size,
			TTL:      req.TTL,
			Trace:    req.Trace,
		}})
	}
	return &Reply{Type: MsgReplyPut, ID: uint64(id), Trace: req.Trace}
}

// handleMultiLookup fans a batch of sub-lookups across the core's
// worker group. Sub-op errors are reported per sub; only an undecodable
// batch payload fails the whole request.
func (s *Server) handleMultiLookup(req *Request) *Reply {
	subs, err := DecodeLookupSubs(req.Value)
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error(), Trace: req.Trace}
	}
	batch := make([]core.BatchLookup, len(subs))
	for i, sub := range subs {
		batch[i] = core.BatchLookup{
			Function: sub.Function,
			KeyType:  sub.KeyType,
			Key:      sub.Key,
			Opts: core.LookupOptions{
				Accept: isByteValue,
				Trace:  telemetry.TraceID(sub.Trace),
			},
		}
	}
	results := s.cache.MultiLookup(batch)
	replies := make([]LookupSubReply, len(results))
	var missIdx []int
	for i, r := range results {
		if r.Err != nil {
			replies[i] = LookupSubReply{Error: r.Err.Error(), Trace: subs[i].Trace}
			continue
		}
		sr := LookupSubReply{
			Hit:       r.Hit,
			Dropout:   r.Dropout,
			Distance:  r.Distance,
			Threshold: r.Threshold,
			MissedAt:  r.MissedAt.UnixNano(),
			Trace:     uint64(r.Trace),
		}
		if r.Hit {
			sr.Value = r.Value.([]byte)
		} else if !r.Dropout {
			missIdx = append(missIdx, i)
		}
		replies[i] = sr
	}
	// Local misses fall through to the cluster tier in one fan-out; the
	// mesh groups them by owner so each owner peer sees ONE MultiLookup
	// frame, not one round trip per miss.
	if len(missIdx) > 0 && s.remote != nil && !IsPeerApp(req.App) {
		fwd := make([]LookupSub, len(missIdx))
		for j, i := range missIdx {
			fwd[j] = LookupSub{
				Function: subs[i].Function,
				KeyType:  subs[i].KeyType,
				Key:      subs[i].Key,
				Trace:    replies[i].Trace,
			}
		}
		for j, rr := range s.remote.RemoteMultiLookup(fwd) {
			if !rr.Hit {
				continue
			}
			i := missIdx[j]
			replies[i].Hit = true
			replies[i].Value = rr.Value
			replies[i].Distance = rr.Distance
			replies[i].Threshold = rr.Threshold
		}
	}
	return &Reply{Type: MsgReplyMultiLookup, Value: EncodeLookupSubReplies(replies), Trace: req.Trace}
}

// handleMultiPut inserts a batch of sub-puts through the core's worker
// group, reporting per-sub IDs and errors.
func (s *Server) handleMultiPut(req *Request) *Reply {
	subs, err := DecodePutSubs(req.Value)
	if err != nil {
		return &Reply{Type: MsgReplyError, Error: err.Error(), Trace: req.Trace}
	}
	batch := make([]core.BatchPut, len(subs))
	for i, sub := range subs {
		batch[i] = core.BatchPut{
			Function: sub.Function,
			Req: core.PutRequest{
				Keys:  sub.Keys,
				Value: sub.Value,
				Cost:  time.Duration(sub.Cost),
				Size:  int(sub.Size),
				TTL:   time.Duration(sub.TTL),
				App:   req.App,
				Trace: telemetry.TraceID(sub.Trace),
			},
		}
	}
	results := s.cache.MultiPut(batch)
	replies := make([]PutSubReply, len(results))
	var admitted []PutSub
	for i, r := range results {
		if r.Err != nil {
			replies[i] = PutSubReply{Error: r.Err.Error(), Trace: subs[i].Trace}
			continue
		}
		replies[i] = PutSubReply{ID: uint64(r.ID), Trace: subs[i].Trace}
		admitted = append(admitted, subs[i])
	}
	if len(admitted) > 0 && s.remote != nil && !IsPeerApp(req.App) {
		s.remote.ReplicatePut(admitted)
	}
	return &Reply{Type: MsgReplyMultiPut, Value: EncodePutSubReplies(replies), Trace: req.Trace}
}

func (s *Server) handleStats() *Reply {
	st := s.cache.Stats()
	return &Reply{Type: MsgReplyStats, Stats: StatsPayload{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Dropouts:      st.Dropouts,
		Puts:          st.Puts,
		Evictions:     st.Evictions,
		Expirations:   st.Expirations,
		Entries:       int64(st.Entries),
		Bytes:         st.Bytes,
		SavedComputeN: int64(st.SavedCompute),
	}}
}

// ListenAndServe listens on the given network/address ("unix" +
// socket path, or "tcp" + host:port) and serves until ctx is cancelled.
func (s *Server) ListenAndServe(ctx context.Context, network, addr string) error {
	l, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}
