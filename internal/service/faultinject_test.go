package service

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// This file is the fault-injection harness for the wire boundary: slow
// and hostile peers against the server's deadlines and caps, dead and
// restarting servers against the client's poisoning and reconnect, and
// a blackholed hub against the tiered breaker. Everything here runs
// under -race in CI with a short -timeout, so a reintroduced deadlock
// fails the job fast instead of hanging it.

// startServerCfg runs a server with explicit robustness limits on a Unix
// socket in a temp dir.
func startServerCfg(t *testing.T, ccfg core.Config, scfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServerConfig(core.New(ccfg), scfg)
	sock := filepath.Join(t.TempDir(), "potluck.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, sock
}

// blackholeListener accepts connections and reads from them forever
// without ever replying — a peer that is up at the TCP level but dead
// above it.
func blackholeListener(t *testing.T) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "blackhole.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return sock
}

// TestSlowLorisEvictedByDeadline: a client that trickles header bytes
// must be cut by the idle deadline, not parked forever.
func TestSlowLorisEvictedByDeadline(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{0}) // one header byte, then stall

	// The server must hang up within the idle deadline (plus slack); a
	// blocking read observes the close. If instead our own 3s read
	// deadline fires, the server never evicted the peer.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server replied to a half frame")
	} else if errDeadline(err) != nil {
		t.Fatalf("server did not evict slow-loris peer within deadline: %v", err)
	}
}

// errDeadline lets the assertion above read as "the error was our own
// read deadline, i.e. the server never hung up".
func errDeadline(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return err
	}
	return nil
}

// TestHalfWrittenFrameEvictedByReadDeadline: a full header promising a
// body that never arrives is cut by the body read deadline, and healthy
// clients are unaffected throughout.
func TestHalfWrittenFrameEvictedByReadDeadline(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 10)) // 10 of the promised 100 bytes, then stall

	cl, err := Dial("unix", sock, "healthy")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatalf("healthy client starved by half-written frame: %v", err)
	}

	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server replied to a half-written frame")
	} else if errDeadline(err) != nil {
		t.Fatalf("server did not evict half-written frame within deadline: %v", err)
	}
}

// TestClientCloseDuringBlockedRoundTrip is the Close-deadlock
// regression: Close must return promptly while a round trip is parked on
// a server that never replies, and the round trip must fail rather than
// hang.
func TestClientCloseDuringBlockedRoundTrip(t *testing.T) {
	sock := blackholeListener(t)
	cl, err := DialConfig("unix", sock, "app", ClientConfig{
		RequestTimeout: -1, // block indefinitely: only Close can free it
		MaxAttempts:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tripErr := make(chan error, 1)
	go func() {
		_, err := cl.Lookup("f", "k", vec.Vector{1})
		tripErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the round trip block on the read

	closed := make(chan struct{})
	go func() {
		cl.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a stuck round trip (deadlock regression)")
	}
	select {
	case err := <-tripErr:
		if err == nil {
			t.Fatal("blocked round trip reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("round trip still blocked after Close")
	}
	// The client is now closed: further requests fail fast and typed.
	if _, err := cl.Stats(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("post-Close request error = %v, want ErrClientClosed", err)
	}
}

// TestClientReconnectAfterServerRestart: a killed-and-restarted server
// is transparently redialed; the requests in between fail instead of
// desyncing.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "potluck.sock")
	start := func() (*Server, chan error) {
		srv := NewServer(core.New(testConfig()))
		l, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), l) }()
		return srv, done
	}

	srv1, done1 := start()
	cl, err := DialConfig("unix", sock, "app", ClientConfig{
		RequestTimeout: time.Second,
		BackoffBase:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("f", map[string]vec.Vector{"k": {1}}, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-session and restart it on the same socket.
	srv1.Close()
	<-done1
	srv2, done2 := start()
	defer func() {
		srv2.Close()
		<-done2
	}()
	if err := srv2.Cache().RegisterFunction("f", core.KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}

	// The very next request rides the poisoned-conn retry path: attempt
	// one fails on the dead connection, the redial lands on the new
	// server.
	res, err := cl.Lookup("f", "k", vec.Vector{1})
	if err != nil {
		t.Fatalf("lookup after restart not transparently reconnected: %v", err)
	}
	if res.Hit {
		t.Fatal("fresh cache reported a hit") // sanity: this really is the new server
	}
}

// TestPoisonedConnNeverDesyncs is the framing-desync regression: after a
// round trip fails mid-flight, a late reply to it must never be read as
// the answer to the next request. A client without a redial path must
// fail fast with ErrConnBroken instead.
func TestPoisonedConnNeverDesyncs(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer sconn.Close()
	cl := NewClientConn(cconn, "app")
	cl.cfg.RequestTimeout = 50 * time.Millisecond

	// The "server" reads the first request but replies only much later —
	// after the client has timed out and moved on.
	staleSent := make(chan struct{})
	go func() {
		defer close(staleSent)
		if _, err := ReadFrame(sconn); err != nil {
			return
		}
		time.Sleep(150 * time.Millisecond)
		// The stale reply for request 1: a hit with a poisoned value. If
		// request 2 ever reads this, the desync bug is back.
		WriteFrame(sconn, EncodeReply(&Reply{Type: MsgReplyLookup, Hit: true, Value: []byte("stale")}))
	}()

	if _, err := cl.Lookup("f", "k", vec.Vector{1}); err == nil {
		t.Fatal("first lookup succeeded against a stalled server")
	}
	<-staleSent // the stale reply is now sitting in the pipe... or dropped by poison-close

	res, err := cl.Lookup("f", "k", vec.Vector{2})
	if err == nil {
		t.Fatalf("second lookup returned %+v off a poisoned connection", res)
	}
	if !errors.Is(err, ErrConnBroken) {
		t.Errorf("second lookup error = %v, want ErrConnBroken", err)
	}
	cl.Close()
}

// TestOversizeRequestRejectedAtWriteTime: a request over MaxMessageSize
// fails with ErrMessageTooLarge before touching the wire, and the
// connection remains usable.
func TestOversizeRequestRejectedAtWriteTime(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{})
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxMessageSize+1)
	if _, err := cl.Put("f", map[string]vec.Vector{"k": {1}}, big, PutOptions{}); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversize put error = %v, want ErrMessageTooLarge", err)
	}
	// Nothing hit the wire: the same connection still serves.
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("connection unusable after rejected oversize put: %v", err)
	}
}

// TestOversizePrefixGetsErrorReply: a hostile length prefix is answered
// with an explicit error reply before the disconnect, not a silent hangup.
func TestOversizePrefixGetsErrorReply(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("no error reply before disconnect: %v", err)
	}
	reply, err := DecodeReply(payload)
	if err != nil || reply.Type != MsgReplyError {
		t.Fatalf("reply = %+v, %v; want MsgReplyError", reply, err)
	}
}

// TestServerConnCap: connections beyond MaxConns are rejected outright;
// capacity freed by a disconnect becomes available again.
func TestServerConnCap(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{MaxConns: 1})
	first, err := Dial("unix", sock, "first")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}

	over, err := DialConfig("unix", sock, "over", ClientConfig{
		RequestTimeout: time.Second,
		MaxAttempts:    1,
	})
	if err == nil {
		defer over.Close()
		if _, err := over.Stats(); err == nil {
			t.Fatal("request served beyond the connection cap")
		}
	}

	// Freeing the slot re-admits new clients (the server needs a moment
	// to observe the disconnect).
	first.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		cl, err := DialConfig("unix", sock, "second", ClientConfig{RequestTimeout: time.Second, MaxAttempts: 1})
		if err == nil {
			if _, err = cl.Stats(); err == nil {
				cl.Close()
				break
			}
			cl.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHandlerPoolBounded: MaxHandlers caps concurrently executing
// requests no matter how many connections push work.
func TestHandlerPoolBounded(t *testing.T) {
	srv, sock := startServerCfg(t, testConfig(), ServerConfig{MaxHandlers: 2})
	var inFlight, peak atomic.Int64
	srv.testHookDispatch = func(*Request) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inFlight.Add(-1)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial("unix", sock, "app")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Stats(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent handlers = %d, want ≤ 2", p)
	}
}

// TestGracefulDrainCompletesInflight: Close lets a request already
// executing finish and deliver its reply instead of cutting it off.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	srv, sock := startServerCfg(t, testConfig(), ServerConfig{DrainTimeout: 5 * time.Second})
	entered := make(chan struct{})
	srv.testHookDispatch = func(req *Request) {
		if req.Type == MsgStats {
			close(entered)
			time.Sleep(200 * time.Millisecond)
		}
	}
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reqDone := make(chan error, 1)
	go func() {
		_, err := cl.Stats()
		reqDone <- err
	}()
	<-entered // the request is now in flight
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-reqDone:
		if err != nil {
			t.Fatalf("in-flight request cut during graceful drain: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestTieredBreakerBlackholedPeer: a blackholed hub trips the breaker;
// lookups degrade to local-only (and stay fast) instead of paying the
// remote timeout forever, and local hits keep serving throughout.
func TestTieredBreakerBlackholedPeer(t *testing.T) {
	sock := blackholeListener(t)
	remote, err := DialConfig("unix", sock, "device-b", ClientConfig{
		RequestTimeout: 50 * time.Millisecond,
		MaxAttempts:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := core.New(testConfig())
	if err := local.RegisterFunction("f", core.KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	tr := &Tiered{Local: local, Remote: remote, FailureThreshold: 2, Cooldown: time.Minute}

	// Local entries serve regardless of the hub's health.
	if _, err := local.Put("f", core.PutRequest{
		Keys: map[string]vec.Vector{"k": {1}}, Value: []byte("local"),
	}); err != nil {
		t.Fatal(err)
	}
	if res, err := tr.Lookup("f", "k", vec.Vector{1}); err != nil || !res.Hit {
		t.Fatalf("local hit with dead hub: %+v, %v", res, err)
	}

	// Misses pay the remote timeout until the breaker trips...
	for i := 0; i < 2; i++ {
		res, err := tr.Lookup("f", "k", vec.Vector{100 + float64(i)})
		if err != nil || res.Hit {
			t.Fatalf("blackholed lookup %d: %+v, %v (want absorbed miss)", i, res, err)
		}
	}
	if st := tr.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker state after %d failures = %s, want open", 2, st)
	}
	if tr.RemoteErrors() != 2 {
		t.Errorf("remote errors = %d, want 2", tr.RemoteErrors())
	}

	// ...then stop paying it entirely: with the breaker open the remote
	// is not consulted, so the lookup is far faster than its timeout.
	start := time.Now()
	res, err := tr.Lookup("f", "k", vec.Vector{200})
	if err != nil || res.Hit {
		t.Fatalf("open-breaker lookup: %+v, %v", res, err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Errorf("open-breaker lookup took %v, should not touch the remote", d)
	}
	// Writes skip the dead hub too, but still land locally.
	if err := tr.Put("f", "k", vec.Vector{3}, []byte("w"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if res, err := tr.Lookup("f", "k", vec.Vector{3}); err != nil || !res.Hit {
		t.Fatalf("local write-through with open breaker: %+v, %v", res, err)
	}
}

// TestBreakerHalfOpenRecovery drives the trip → cooldown → probe →
// close cycle on an injected clock.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(2, time.Second, func() time.Time { return now })
	fail := errors.New("peer down")

	if !b.Allow() {
		t.Fatal("fresh breaker refused a call")
	}
	b.Report(fail)
	if !b.Allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.Report(fail)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}

	now = now.Add(2 * time.Second) // cooldown elapses
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Report(fail) // probe fails: open again
	if b.Allow() {
		t.Fatal("breaker closed after a failed probe")
	}

	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Report(nil) // probe succeeds: closed
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused a call")
	}
}

// TestUnknownMessageTypeOverStack: an unknown request type crosses the
// full client/server stack as an error reply, not a disconnect.
func TestUnknownMessageTypeOverStack(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, EncodeRequest(&Request{Type: 99})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := DecodeReply(payload)
	if err != nil || reply.Type != MsgReplyError {
		t.Fatalf("reply = %+v, %v; want MsgReplyError", reply, err)
	}
	// The connection survives a recognizably-framed bad request.
	if err := WriteFrame(conn, EncodeRequest(&Request{Type: MsgStats})); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(conn); err != nil {
		t.Fatalf("connection dropped after recoverable bad request: %v", err)
	}
}

// TestZeroLengthVectorOverStack: an empty lookup key is a clean error
// reply through the full stack, and the connection keeps serving.
func TestZeroLengthVectorOverStack(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{})
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	// A zero-length lookup key is a defined clean miss (only inserts
	// reject empty keys), and must not disturb the stream.
	if res, err := cl.Lookup("f", "k", vec.Vector{}); err != nil || res.Hit {
		t.Fatalf("zero-length lookup = %+v, %v; want clean miss", res, err)
	}
	if _, err := cl.Put("f", map[string]vec.Vector{"k": {}}, []byte("v"), PutOptions{}); err == nil {
		t.Fatal("zero-length put key accepted")
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("connection unusable after error replies: %v", err)
	}
}
