package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestSpillStoreRestartReuse is the restart regression: a reopened store
// must resume its id counter past the previous run's files (a stale
// handle must never alias new data) and sweep the orphaned files instead
// of leaking them forever.
func TestSpillStoreRestartReuse(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	big := bytes.Repeat([]byte("x"), 32)

	s1, err := NewSpillStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	var lastID uint64
	for i := 0; i < 3; i++ {
		if lastID, err = s1.Put(big); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file from a crashed mid-write Put must be swept too.
	if err := os.WriteFile(filepath.Join(dir, "entry-99.bin.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewSpillStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("reopen left %d orphan files in spill dir", len(left))
	}
	id, err := s2.Put(big)
	if err != nil {
		t.Fatal(err)
	}
	// The temp file's id (99) outranks the real entries; the counter must
	// clear both so no previous run's handle can alias the new entry.
	if id <= lastID || id <= 99 {
		t.Errorf("post-restart id = %d, want > %d and > 99 (counter not resumed)", id, lastID)
	}
	got, err := s2.Get(id)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("post-restart Get = %q, %v", got, err)
	}
	// Old handles are gone, not silently remapped.
	if _, err := s2.Get(lastID); err == nil {
		t.Error("stale pre-restart handle resolved after reopen")
	}
}

// TestSpillStorePutWriteFailure injects a write failure (a directory
// squatting on the temp path) and checks Put fails cleanly: an error,
// no partial entry file left behind, and the store keeps working.
func TestSpillStorePutWriteFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	s, err := NewSpillStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The first spill reserves id 1; make its temp path unwritable.
	if err := os.MkdirAll(filepath.Join(dir, "entry-1.bin.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("y"), 32)
	if _, err := s.Put(big); err == nil {
		t.Fatal("Put succeeded despite injected write failure")
	}
	if _, err := os.Stat(filepath.Join(dir, "entry-1.bin")); !os.IsNotExist(err) {
		t.Errorf("failed Put left an entry file behind: %v", err)
	}
	// The store stays usable; the burned id is skipped, not reused.
	id, err := s.Put(big)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("post-failure id = %d, want 2", id)
	}
	if got, err := s.Get(id); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Get after recovered Put = %q, %v", got, err)
	}
}
