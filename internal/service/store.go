package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/store"
)

// SpillStore is the optional second storage tier standing in for the
// paper's "secondary flash storage" (Figure 4): byte values above a
// threshold are written to files and read back on demand, keeping the
// in-memory tier small. It is safe for concurrent use.
type SpillStore struct {
	dir       string
	threshold int

	mu     sync.Mutex
	nextID uint64
	inMem  map[uint64][]byte
	onDisk map[uint64]string
}

// NewSpillStore creates a store rooted at dir; values of threshold bytes
// or more spill to disk. dir is created if missing.
//
// Opening scans the directory: the id counter resumes past the highest
// existing entry file (handles held across a restart must never be
// reassigned to new data, which would silently serve the wrong bytes),
// and leftover files — spilled entries and temp files from a previous
// run, none of which any live handle references — are swept so restarts
// do not leak disk forever.
func NewSpillStore(dir string, threshold int) (*SpillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spill dir: %w", err)
	}
	if threshold <= 0 {
		threshold = 64 << 10
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: spill dir scan: %w", err)
	}
	var maxID uint64
	for _, ent := range entries {
		name := ent.Name()
		if id, ok := spillEntryID(strings.TrimSuffix(name, ".tmp")); ok {
			if id > maxID {
				maxID = id
			}
			// Orphan from a previous run: nothing references it anymore.
			// Removal is best-effort; resuming the counter past its id is
			// what guarantees correctness.
			os.Remove(filepath.Join(dir, name))
		}
	}
	return &SpillStore{
		dir:       dir,
		threshold: threshold,
		nextID:    maxID,
		inMem:     make(map[uint64][]byte),
		onDisk:    make(map[uint64]string),
	}, nil
}

// spillEntryID parses the id out of an "entry-<id>.bin" file name.
func spillEntryID(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "entry-") || !strings.HasSuffix(name, ".bin") {
		return 0, false
	}
	id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "entry-"), ".bin"), 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// Put stores a value and returns its handle.
func (s *SpillStore) Put(value []byte) (uint64, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	if len(value) < s.threshold {
		cp := make([]byte, len(value))
		copy(cp, value)
		s.inMem[id] = cp
		s.mu.Unlock()
		return id, nil
	}
	s.mu.Unlock()
	// Write the file before publishing its path: a concurrent Get that
	// saw the handle early would read a missing or partially written
	// file. The id is already reserved, so racing Puts cannot collide.
	// AtomicWriteFile lands the bytes in a temp file, fsyncs, renames
	// into place, and fsyncs the parent directory — a failed write can
	// never leave a partial entry file behind for a later reader (or
	// the restart sweep) to mistake for a whole one, and a power cut
	// after Put returns cannot lose the published file either.
	path := filepath.Join(s.dir, fmt.Sprintf("entry-%d.bin", id))
	if err := store.AtomicWriteFile(path, value, 0o644); err != nil {
		return 0, fmt.Errorf("service: spill write: %w", err)
	}
	s.mu.Lock()
	s.onDisk[id] = path
	s.mu.Unlock()
	return id, nil
}

// Get retrieves a value by handle.
func (s *SpillStore) Get(id uint64) ([]byte, error) {
	s.mu.Lock()
	if v, ok := s.inMem[id]; ok {
		cp := make([]byte, len(v))
		copy(cp, v)
		s.mu.Unlock()
		return cp, nil
	}
	path, ok := s.onDisk[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: no entry %d", id)
	}
	return os.ReadFile(path)
}

// Delete removes a value.
func (s *SpillStore) Delete(id uint64) error {
	s.mu.Lock()
	if _, ok := s.inMem[id]; ok {
		delete(s.inMem, id)
		s.mu.Unlock()
		return nil
	}
	path, ok := s.onDisk[id]
	delete(s.onDisk, id)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return os.Remove(path)
}

// Stats reports the number of in-memory and spilled entries.
func (s *SpillStore) Stats() (inMem, onDisk int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inMem), len(s.onDisk)
}
