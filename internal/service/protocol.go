// Package service exposes the Potluck cache as a background service, the
// role Android Binder/AIDL plays in the paper's implementation (§4).
// Applications connect over a Unix domain socket (or TCP loopback) and
// exchange length-prefixed binary messages: Register, Lookup, Put, and
// Stats requests, mirroring the AppListener/CacheManager split of
// Figure 4. Values cross the wire as opaque byte slices; applications
// serialize their own results.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/vec"
)

// MsgType identifies a wire message.
type MsgType uint8

// Wire message types.
const (
	MsgRegister MsgType = iota + 1
	MsgLookup
	MsgPut
	MsgStats
	MsgReplyOK
	MsgReplyError
	MsgReplyLookup
	MsgReplyPut
	MsgReplyStats
	// Batch operations (added after the single-op protocol shipped).
	// Batch frames are ordinary Request/Reply envelopes whose Value
	// field carries a length-prefixed sub-operation array, so an
	// old-style peer parses the frame cleanly and replies MsgReplyError
	// ("unknown request type") instead of tearing the connection — the
	// same mixed-version discipline as the trailing trace-ID field.
	MsgMultiLookup
	MsgMultiPut
	MsgReplyMultiLookup
	MsgReplyMultiPut
	// Peer handshake (added with the cluster mesh). A MsgPeerInfo frame
	// is an ordinary Request envelope whose Value carries an encoded
	// PeerInfo, so an old-style peer parses the envelope cleanly and
	// replies MsgReplyError ("unknown request type") on a healthy
	// connection — the mesh reads that as "legacy peer" and keeps using
	// the plain lookup/put messages it does understand.
	MsgPeerInfo
	MsgReplyPeerInfo
)

// MaxMessageSize bounds a single wire message (16 MiB), protecting the
// server from malformed or hostile length prefixes.
const MaxMessageSize = 16 << 20

// MeshProtocolVersion is the peer-routing protocol generation this build
// speaks, exchanged in the MsgPeerInfo handshake. Peers with a different
// version still interoperate over the envelope rules (trailing fields
// are skipped, unknown message types get in-band errors); the version is
// diagnostic, not a gate.
const MeshProtocolVersion = 1

// PeerAppPrefix marks requests issued by a mesh peer rather than an
// application. The server never fans a peer-originated lookup back out
// to the mesh (the sender already routed it to an owner) and never
// re-replicates a peer-originated put — both would amplify or loop.
// The prefix rides in the envelope's existing App field, so the marking
// is understood by construction on every protocol generation.
const PeerAppPrefix = "mesh:"

// IsPeerApp reports whether an App name marks a mesh-peer request.
func IsPeerApp(app string) bool {
	return len(app) >= len(PeerAppPrefix) && app[:len(PeerAppPrefix)] == PeerAppPrefix
}

// PeerInfo is the payload of the MsgPeerInfo handshake: who a node is
// and what it speaks. Sent by a mesh client when it first reaches a
// peer; the peer answers with its own. NodeID is the rendezvous-hash
// identity — a mismatch against the dialed peer's configured ID means
// the membership lists disagree and is surfaced as a warning.
type PeerInfo struct {
	Version uint32
	NodeID  string
	// Replicas advertises the sender's replication factor K, for
	// diagnosing asymmetric mesh configurations.
	Replicas uint32
}

// EncodePeerInfo serializes a handshake payload (the Value of a
// MsgPeerInfo/MsgReplyPeerInfo envelope).
func EncodePeerInfo(p *PeerInfo) []byte {
	var e encoder
	e.u32(p.Version)
	e.str(p.NodeID)
	e.u32(p.Replicas)
	return e.buf
}

// DecodePeerInfo parses a handshake payload. Trailing bytes beyond the
// known fields are ignored, so future encoders can append fields without
// breaking this decoder — the same rule as the Request/Reply envelopes.
func DecodePeerInfo(buf []byte) (*PeerInfo, error) {
	d := decoder{buf: buf}
	p := &PeerInfo{Version: d.u32()}
	p.NodeID = d.str()
	p.Replicas = d.u32()
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

// ErrMessageTooLarge is returned when a frame exceeds MaxMessageSize.
var ErrMessageTooLarge = errors.New("service: message exceeds size limit")

// KeyTypeDef describes a key type in a Register message. Extraction
// functions cannot cross the process boundary, so remote key types
// always receive explicit keys in Put requests.
type KeyTypeDef struct {
	Name   string
	Metric string // vec.MetricByName identifier
	Index  string // index.Kind
	Dim    uint32
}

// Request is the union of client→server messages (§4.2: "a Request
// message ... consists of the request type, function name, key type,
// lookup key, and computation results to store").
type Request struct {
	Type     MsgType
	App      string
	Function string
	KeyType  string
	Key      vec.Vector
	Keys     map[string]vec.Vector
	KeyTypes []KeyTypeDef
	Value    []byte
	Cost     int64 // nanoseconds
	Size     int64
	TTL      int64 // nanoseconds
	// Trace is the span trace ID this request runs under (0 = untraced).
	// It rides as an OPTIONAL TRAILING field: old decoders stop before it
	// and ignore the extra bytes, new decoders read it only when present,
	// so mixed-version peers interoperate (the old peer simply sees an
	// untraced request).
	Trace uint64
}

// Reply is the union of server→client messages.
type Reply struct {
	Type      MsgType
	Error     string
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	MissedAt  int64 // nanoseconds since epoch, for cost accounting
	ID        uint64
	Stats     StatsPayload
	// Trace echoes the trace ID the server recorded the operation under
	// (the request's ID, or one the server minted). Optional trailing
	// field with the same mixed-version contract as Request.Trace.
	Trace uint64
}

// StatsPayload mirrors core.Stats over the wire.
type StatsPayload struct {
	Hits, Misses, Dropouts, Puts  int64
	Evictions, Expirations        int64
	Entries, Bytes, SavedComputeN int64
}

// --- encoding primitives ---

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	var b uint8
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) vector(v vec.Vector) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("service: truncated message")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// remaining reports how many undecoded bytes are left. d.off never
// exceeds len(d.buf), so the result is non-negative.
func (d *decoder) remaining() int { return len(d.buf) - d.off }

// Length fields are compared against the remaining buffer in uint64:
// a hostile length near MaxUint32 must not wrap when widened to int
// (int is 32 bits on 32-bit platforms, where int(n) can go negative
// and d.off+n can overflow past a bounds check).

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(d.remaining()) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(d.remaining()) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return b
}

func (d *decoder) vector() vec.Vector {
	n := d.u32()
	if d.err != nil || uint64(n)*8 > uint64(d.remaining()) {
		d.fail()
		return nil
	}
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// sub returns the next length-prefixed sub-frame as a slice of the
// underlying buffer (no copy).
func (d *decoder) sub() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(d.remaining()) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// EncodeRequest serializes a request payload (without the frame header).
func EncodeRequest(r *Request) []byte {
	var e encoder
	e.u8(uint8(r.Type))
	e.str(r.App)
	e.str(r.Function)
	e.str(r.KeyType)
	e.vector(r.Key)
	e.u32(uint32(len(r.Keys)))
	for _, k := range sortedKeys(r.Keys) {
		e.str(k.name)
		e.vector(k.key)
	}
	e.u32(uint32(len(r.KeyTypes)))
	for _, kt := range r.KeyTypes {
		e.str(kt.Name)
		e.str(kt.Metric)
		e.str(kt.Index)
		e.u32(kt.Dim)
	}
	e.bytes(r.Value)
	e.i64(r.Cost)
	e.i64(r.Size)
	e.i64(r.TTL)
	e.u64(r.Trace)
	return e.buf
}

type namedKey struct {
	name string
	key  vec.Vector
}

// sortedKeys yields deterministic wire encoding for map fields.
func sortedKeys(m map[string]vec.Vector) []namedKey {
	out := make([]namedKey, 0, len(m))
	for name, k := range m {
		out = append(out, namedKey{name, k})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DecodeRequest parses a request payload.
func DecodeRequest(buf []byte) (*Request, error) {
	d := decoder{buf: buf}
	r := &Request{Type: MsgType(d.u8())}
	r.App = d.str()
	r.Function = d.str()
	r.KeyType = d.str()
	r.Key = d.vector()
	if n := d.u32(); n > 0 {
		// Each entry takes ≥ 8 bytes; cheap sanity bound, compared in
		// uint64 so a hostile count cannot wrap on 32-bit platforms.
		if uint64(n) > uint64(len(buf)) {
			return nil, errors.New("service: corrupt key map length")
		}
		r.Keys = make(map[string]vec.Vector, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			name := d.str()
			r.Keys[name] = d.vector()
		}
	}
	if n := d.u32(); n > 0 {
		if uint64(n) > uint64(len(buf)) {
			return nil, errors.New("service: corrupt key type list length")
		}
		r.KeyTypes = make([]KeyTypeDef, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			r.KeyTypes = append(r.KeyTypes, KeyTypeDef{
				Name:   d.str(),
				Metric: d.str(),
				Index:  d.str(),
				Dim:    d.u32(),
			})
		}
	}
	r.Value = d.bytes()
	r.Cost = d.i64()
	r.Size = d.i64()
	r.TTL = d.i64()
	// Optional trailing trace ID: absent in frames from older encoders
	// (decoders have never rejected leftover bytes, so the asymmetric
	// read is safe in both directions).
	if d.err == nil && d.off+8 <= len(d.buf) {
		r.Trace = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// EncodeReply serializes a reply payload.
func EncodeReply(r *Reply) []byte {
	var e encoder
	e.u8(uint8(r.Type))
	e.str(r.Error)
	e.bool(r.Hit)
	e.bool(r.Dropout)
	e.bytes(r.Value)
	e.f64(r.Distance)
	e.f64(r.Threshold)
	e.i64(r.MissedAt)
	e.u64(r.ID)
	s := r.Stats
	for _, v := range []int64{s.Hits, s.Misses, s.Dropouts, s.Puts,
		s.Evictions, s.Expirations, s.Entries, s.Bytes, s.SavedComputeN} {
		e.i64(v)
	}
	e.u64(r.Trace)
	return e.buf
}

// DecodeReply parses a reply payload.
func DecodeReply(buf []byte) (*Reply, error) {
	d := decoder{buf: buf}
	r := &Reply{Type: MsgType(d.u8())}
	r.Error = d.str()
	r.Hit = d.bool()
	r.Dropout = d.bool()
	r.Value = d.bytes()
	r.Distance = d.f64()
	r.Threshold = d.f64()
	r.MissedAt = d.i64()
	r.ID = d.u64()
	for _, p := range []*int64{&r.Stats.Hits, &r.Stats.Misses, &r.Stats.Dropouts,
		&r.Stats.Puts, &r.Stats.Evictions, &r.Stats.Expirations,
		&r.Stats.Entries, &r.Stats.Bytes, &r.Stats.SavedComputeN} {
		*p = d.i64()
	}
	// Optional trailing trace ID (see DecodeRequest).
	if d.err == nil && d.off+8 <= len(d.buf) {
		r.Trace = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// --- batch sub-operation codecs ---
//
// A MsgMultiLookup/MsgMultiPut frame is a normal Request envelope whose
// Value holds `u32 count` followed by count sub-operations, each
// length-prefixed (`u32 len | payload`). The per-sub length prefix lets
// future encoders append trailing fields to a sub-op without breaking
// older decoders (they decode the fields they know and skip the rest),
// mirroring the envelope-level trailing-field rule. Replies mirror the
// layout in the Reply envelope's Value.

// MaxBatch bounds the sub-operations in one batch frame, protecting the
// server's fan-out (and the reply frame size) from hostile counts.
const MaxBatch = 4096

// ErrBatchTooLarge is returned when a batch exceeds MaxBatch sub-ops.
var ErrBatchTooLarge = errors.New("service: batch exceeds sub-operation limit")

// LookupSub is one sub-operation of a MsgMultiLookup batch.
type LookupSub struct {
	Function string
	KeyType  string
	Key      vec.Vector
	// Trace is this sub-operation's span trace ID (0 = untraced). Each
	// sub-op carries its own ID so one batch frame yields one span per
	// lookup, not one blurred span per batch.
	Trace uint64
}

// LookupSubReply is the per-sub-operation outcome of a batch lookup.
// Error is set when this sub-op failed (unknown function, say) — a
// sub-op failure never fails its siblings.
type LookupSubReply struct {
	Error     string
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	MissedAt  int64 // nanoseconds since epoch
	Trace     uint64
}

// PutSub is one sub-operation of a MsgMultiPut batch.
type PutSub struct {
	Function string
	Keys     map[string]vec.Vector
	Value    []byte
	Cost     int64 // nanoseconds
	Size     int64
	TTL      int64 // nanoseconds
	Trace    uint64
}

// PutSubReply is the per-sub-operation outcome of a batch put.
type PutSubReply struct {
	Error string
	ID    uint64
	Trace uint64
}

// batchCount reads and validates the leading sub-op count of a batch
// payload.
func (d *decoder) batchCount() (int, error) {
	n := d.u32()
	if d.err != nil {
		return 0, d.err
	}
	if n > MaxBatch {
		return 0, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, n, MaxBatch)
	}
	// Every sub-op costs at least a 4-byte length prefix.
	if uint64(n)*4 > uint64(d.remaining()) {
		return 0, errors.New("service: corrupt batch count")
	}
	return int(n), nil
}

// EncodeLookupSubs serializes a batch of lookup sub-operations (the
// Value payload of a MsgMultiLookup envelope).
func EncodeLookupSubs(subs []LookupSub) []byte {
	var e encoder
	e.u32(uint32(len(subs)))
	var se encoder
	for _, s := range subs {
		se.buf = se.buf[:0]
		se.str(s.Function)
		se.str(s.KeyType)
		se.vector(s.Key)
		se.u64(s.Trace)
		e.bytes(se.buf)
	}
	return e.buf
}

// DecodeLookupSubs parses a MsgMultiLookup Value payload.
func DecodeLookupSubs(buf []byte) ([]LookupSub, error) {
	d := decoder{buf: buf}
	n, err := d.batchCount()
	if err != nil {
		return nil, err
	}
	subs := make([]LookupSub, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sd := decoder{buf: d.sub()}
		subs = append(subs, LookupSub{
			Function: sd.str(),
			KeyType:  sd.str(),
			Key:      sd.vector(),
			Trace:    sd.u64(),
		})
		if sd.err != nil {
			return nil, sd.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return subs, nil
}

// EncodeLookupSubReplies serializes per-sub lookup outcomes (the Value
// payload of a MsgReplyMultiLookup envelope).
func EncodeLookupSubReplies(subs []LookupSubReply) []byte {
	var e encoder
	e.u32(uint32(len(subs)))
	var se encoder
	for _, s := range subs {
		se.buf = se.buf[:0]
		se.str(s.Error)
		se.bool(s.Hit)
		se.bool(s.Dropout)
		se.bytes(s.Value)
		se.f64(s.Distance)
		se.f64(s.Threshold)
		se.i64(s.MissedAt)
		se.u64(s.Trace)
		e.bytes(se.buf)
	}
	return e.buf
}

// DecodeLookupSubReplies parses a MsgReplyMultiLookup Value payload.
func DecodeLookupSubReplies(buf []byte) ([]LookupSubReply, error) {
	d := decoder{buf: buf}
	n, err := d.batchCount()
	if err != nil {
		return nil, err
	}
	subs := make([]LookupSubReply, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sd := decoder{buf: d.sub()}
		subs = append(subs, LookupSubReply{
			Error:     sd.str(),
			Hit:       sd.bool(),
			Dropout:   sd.bool(),
			Value:     sd.bytes(),
			Distance:  sd.f64(),
			Threshold: sd.f64(),
			MissedAt:  sd.i64(),
			Trace:     sd.u64(),
		})
		if sd.err != nil {
			return nil, sd.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return subs, nil
}

// EncodePutSubs serializes a batch of put sub-operations (the Value
// payload of a MsgMultiPut envelope).
func EncodePutSubs(subs []PutSub) []byte {
	var e encoder
	e.u32(uint32(len(subs)))
	var se encoder
	for _, s := range subs {
		se.buf = se.buf[:0]
		se.str(s.Function)
		se.u32(uint32(len(s.Keys)))
		for _, k := range sortedKeys(s.Keys) {
			se.str(k.name)
			se.vector(k.key)
		}
		se.bytes(s.Value)
		se.i64(s.Cost)
		se.i64(s.Size)
		se.i64(s.TTL)
		se.u64(s.Trace)
		e.bytes(se.buf)
	}
	return e.buf
}

// DecodePutSubs parses a MsgMultiPut Value payload.
func DecodePutSubs(buf []byte) ([]PutSub, error) {
	d := decoder{buf: buf}
	n, err := d.batchCount()
	if err != nil {
		return nil, err
	}
	subs := make([]PutSub, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sd := decoder{buf: d.sub()}
		s := PutSub{Function: sd.str()}
		if kn := sd.u32(); kn > 0 && sd.err == nil {
			if uint64(kn) > uint64(sd.remaining()) {
				return nil, errors.New("service: corrupt sub key map length")
			}
			s.Keys = make(map[string]vec.Vector, kn)
			for j := uint32(0); j < kn && sd.err == nil; j++ {
				name := sd.str()
				s.Keys[name] = sd.vector()
			}
		}
		s.Value = sd.bytes()
		s.Cost = sd.i64()
		s.Size = sd.i64()
		s.TTL = sd.i64()
		s.Trace = sd.u64()
		if sd.err != nil {
			return nil, sd.err
		}
		subs = append(subs, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	return subs, nil
}

// EncodePutSubReplies serializes per-sub put outcomes.
func EncodePutSubReplies(subs []PutSubReply) []byte {
	var e encoder
	e.u32(uint32(len(subs)))
	var se encoder
	for _, s := range subs {
		se.buf = se.buf[:0]
		se.str(s.Error)
		se.u64(s.ID)
		se.u64(s.Trace)
		e.bytes(se.buf)
	}
	return e.buf
}

// DecodePutSubReplies parses a MsgReplyMultiPut Value payload.
func DecodePutSubReplies(buf []byte) ([]PutSubReply, error) {
	d := decoder{buf: buf}
	n, err := d.batchCount()
	if err != nil {
		return nil, err
	}
	subs := make([]PutSubReply, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sd := decoder{buf: d.sub()}
		subs = append(subs, PutSubReply{
			Error: sd.str(),
			ID:    sd.u64(),
			Trace: sd.u64(),
		})
		if sd.err != nil {
			return nil, sd.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return subs, nil
}

// WriteFrame writes a length-prefixed message.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
