// Package service exposes the Potluck cache as a background service, the
// role Android Binder/AIDL plays in the paper's implementation (§4).
// Applications connect over a Unix domain socket (or TCP loopback) and
// exchange length-prefixed binary messages: Register, Lookup, Put, and
// Stats requests, mirroring the AppListener/CacheManager split of
// Figure 4. Values cross the wire as opaque byte slices; applications
// serialize their own results.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/vec"
)

// MsgType identifies a wire message.
type MsgType uint8

// Wire message types.
const (
	MsgRegister MsgType = iota + 1
	MsgLookup
	MsgPut
	MsgStats
	MsgReplyOK
	MsgReplyError
	MsgReplyLookup
	MsgReplyPut
	MsgReplyStats
)

// MaxMessageSize bounds a single wire message (16 MiB), protecting the
// server from malformed or hostile length prefixes.
const MaxMessageSize = 16 << 20

// ErrMessageTooLarge is returned when a frame exceeds MaxMessageSize.
var ErrMessageTooLarge = errors.New("service: message exceeds size limit")

// KeyTypeDef describes a key type in a Register message. Extraction
// functions cannot cross the process boundary, so remote key types
// always receive explicit keys in Put requests.
type KeyTypeDef struct {
	Name   string
	Metric string // vec.MetricByName identifier
	Index  string // index.Kind
	Dim    uint32
}

// Request is the union of client→server messages (§4.2: "a Request
// message ... consists of the request type, function name, key type,
// lookup key, and computation results to store").
type Request struct {
	Type     MsgType
	App      string
	Function string
	KeyType  string
	Key      vec.Vector
	Keys     map[string]vec.Vector
	KeyTypes []KeyTypeDef
	Value    []byte
	Cost     int64 // nanoseconds
	Size     int64
	TTL      int64 // nanoseconds
	// Trace is the span trace ID this request runs under (0 = untraced).
	// It rides as an OPTIONAL TRAILING field: old decoders stop before it
	// and ignore the extra bytes, new decoders read it only when present,
	// so mixed-version peers interoperate (the old peer simply sees an
	// untraced request).
	Trace uint64
}

// Reply is the union of server→client messages.
type Reply struct {
	Type      MsgType
	Error     string
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	MissedAt  int64 // nanoseconds since epoch, for cost accounting
	ID        uint64
	Stats     StatsPayload
	// Trace echoes the trace ID the server recorded the operation under
	// (the request's ID, or one the server minted). Optional trailing
	// field with the same mixed-version contract as Request.Trace.
	Trace uint64
}

// StatsPayload mirrors core.Stats over the wire.
type StatsPayload struct {
	Hits, Misses, Dropouts, Puts  int64
	Evictions, Expirations        int64
	Entries, Bytes, SavedComputeN int64
}

// --- encoding primitives ---

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	var b uint8
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) vector(v vec.Vector) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("service: truncated message")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) vector() vec.Vector {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+8*n > len(d.buf) {
		d.fail()
		return nil
	}
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// EncodeRequest serializes a request payload (without the frame header).
func EncodeRequest(r *Request) []byte {
	var e encoder
	e.u8(uint8(r.Type))
	e.str(r.App)
	e.str(r.Function)
	e.str(r.KeyType)
	e.vector(r.Key)
	e.u32(uint32(len(r.Keys)))
	for _, k := range sortedKeys(r.Keys) {
		e.str(k.name)
		e.vector(k.key)
	}
	e.u32(uint32(len(r.KeyTypes)))
	for _, kt := range r.KeyTypes {
		e.str(kt.Name)
		e.str(kt.Metric)
		e.str(kt.Index)
		e.u32(kt.Dim)
	}
	e.bytes(r.Value)
	e.i64(r.Cost)
	e.i64(r.Size)
	e.i64(r.TTL)
	e.u64(r.Trace)
	return e.buf
}

type namedKey struct {
	name string
	key  vec.Vector
}

// sortedKeys yields deterministic wire encoding for map fields.
func sortedKeys(m map[string]vec.Vector) []namedKey {
	out := make([]namedKey, 0, len(m))
	for name, k := range m {
		out = append(out, namedKey{name, k})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DecodeRequest parses a request payload.
func DecodeRequest(buf []byte) (*Request, error) {
	d := decoder{buf: buf}
	r := &Request{Type: MsgType(d.u8())}
	r.App = d.str()
	r.Function = d.str()
	r.KeyType = d.str()
	r.Key = d.vector()
	if n := int(d.u32()); n > 0 {
		if n > len(buf) { // each entry takes ≥ 8 bytes; cheap sanity bound
			return nil, errors.New("service: corrupt key map length")
		}
		r.Keys = make(map[string]vec.Vector, n)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			r.Keys[name] = d.vector()
		}
	}
	if n := int(d.u32()); n > 0 {
		if n > len(buf) {
			return nil, errors.New("service: corrupt key type list length")
		}
		r.KeyTypes = make([]KeyTypeDef, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.KeyTypes = append(r.KeyTypes, KeyTypeDef{
				Name:   d.str(),
				Metric: d.str(),
				Index:  d.str(),
				Dim:    d.u32(),
			})
		}
	}
	r.Value = d.bytes()
	r.Cost = d.i64()
	r.Size = d.i64()
	r.TTL = d.i64()
	// Optional trailing trace ID: absent in frames from older encoders
	// (decoders have never rejected leftover bytes, so the asymmetric
	// read is safe in both directions).
	if d.err == nil && d.off+8 <= len(d.buf) {
		r.Trace = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// EncodeReply serializes a reply payload.
func EncodeReply(r *Reply) []byte {
	var e encoder
	e.u8(uint8(r.Type))
	e.str(r.Error)
	e.bool(r.Hit)
	e.bool(r.Dropout)
	e.bytes(r.Value)
	e.f64(r.Distance)
	e.f64(r.Threshold)
	e.i64(r.MissedAt)
	e.u64(r.ID)
	s := r.Stats
	for _, v := range []int64{s.Hits, s.Misses, s.Dropouts, s.Puts,
		s.Evictions, s.Expirations, s.Entries, s.Bytes, s.SavedComputeN} {
		e.i64(v)
	}
	e.u64(r.Trace)
	return e.buf
}

// DecodeReply parses a reply payload.
func DecodeReply(buf []byte) (*Reply, error) {
	d := decoder{buf: buf}
	r := &Reply{Type: MsgType(d.u8())}
	r.Error = d.str()
	r.Hit = d.bool()
	r.Dropout = d.bool()
	r.Value = d.bytes()
	r.Distance = d.f64()
	r.Threshold = d.f64()
	r.MissedAt = d.i64()
	r.ID = d.u64()
	for _, p := range []*int64{&r.Stats.Hits, &r.Stats.Misses, &r.Stats.Dropouts,
		&r.Stats.Puts, &r.Stats.Evictions, &r.Stats.Expirations,
		&r.Stats.Entries, &r.Stats.Bytes, &r.Stats.SavedComputeN} {
		*p = d.i64()
	}
	// Optional trailing trace ID (see DecodeRequest).
	if d.err == nil && d.off+8 <= len(d.buf) {
		r.Trace = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// WriteFrame writes a length-prefixed message.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
