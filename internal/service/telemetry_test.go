package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// TestServerInstrumented drives an instrumented server end to end and
// checks the exposition: per-op request counters and latency histogram
// counts must match the requests issued, and every op family must be
// present from the first scrape (the CI smoke test scrapes a daemon
// that has served nothing yet).
func TestServerInstrumented(t *testing.T) {
	tel := telemetry.New()
	cache := core.New(testConfig())
	srv := NewServer(cache)
	srv.Instrument(tel)

	// Pre-traffic scrape: every op's series must already be shaped.
	out := scrape(t, tel)
	for _, op := range opNames {
		for _, want := range []string{
			fmt.Sprintf(`potluck_server_requests_total{op=%q,result="ok"} 0`, op),
			fmt.Sprintf(`potluck_server_request_latency_seconds_count{op=%q} 0`, op),
		} {
			if !strings.Contains(out, want) {
				t.Errorf("pre-traffic exposition missing %q", want)
			}
		}
	}

	sock := filepath.Join(t.TempDir(), "potluck.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		cancel()
		srv.Close()
		<-done
	}()

	client, err := Dial("unix", sock, "lens")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Instrument(tel)

	if err := client.Register("recog", KeyTypeDef{Name: "feat", Metric: "euclidean"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Put("recog", map[string]vec.Vector{"feat": {1, 2}}, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	const lookups = 5
	for i := 0; i < lookups; i++ {
		if _, err := client.Lookup("recog", "feat", vec.Vector{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	// An unregistered function is a served request with an error result.
	if _, err := client.Lookup("nosuch", "feat", vec.Vector{1}); err == nil {
		t.Fatal("lookup of unregistered function succeeded")
	}

	out = scrape(t, tel)
	for _, want := range []string{
		`potluck_server_requests_total{op="register",result="ok"} 1`,
		`potluck_server_requests_total{op="put",result="ok"} 1`,
		fmt.Sprintf(`potluck_server_requests_total{op="lookup",result="ok"} %d`, lookups),
		`potluck_server_requests_total{op="lookup",result="error"} 1`,
		`potluck_server_requests_total{op="stats",result="ok"} 1`,
		fmt.Sprintf(`potluck_server_request_latency_seconds_count{op="lookup"} %d`, lookups+1),
		`potluck_server_open_conns 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	st := srv.AdminStats(time.Now().Add(-time.Second))
	if st.Hits != lookups || st.Puts != 1 {
		t.Errorf("AdminStats hits=%d puts=%d, want %d/1", st.Hits, st.Puts, lookups)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
	if len(st.Functions) != 1 || st.Functions[0].Function != "recog" {
		t.Errorf("AdminStats functions = %+v", st.Functions)
	}
}

func scrape(t *testing.T, tel *telemetry.Telemetry) string {
	t.Helper()
	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestLogLimiter pins the token bucket: a burst passes, the flood is
// suppressed and counted, and the count is surfaced on the next line
// that gets through after refill.
func TestLogLimiter(t *testing.T) {
	now := time.Unix(0, 0)
	l := newLogLimiter(3, 1, func() time.Time { return now })
	for i := 0; i < 3; i++ {
		if ok, sup := l.allow("k"); !ok || sup != 0 {
			t.Fatalf("burst line %d: ok=%v sup=%d", i, ok, sup)
		}
	}
	for i := 0; i < 10; i++ {
		if ok, _ := l.allow("k"); ok {
			t.Fatalf("flood line %d passed the exhausted bucket", i)
		}
	}
	// An unrelated key has its own bucket.
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("independent key was limited")
	}
	now = now.Add(2 * time.Second) // refill 2 tokens
	ok, sup := l.allow("k")
	if !ok || sup != 10 {
		t.Fatalf("after refill: ok=%v suppressed=%d, want true/10", ok, sup)
	}
	if ok, sup := l.allow("k"); !ok || sup != 0 {
		t.Fatalf("second refilled token: ok=%v sup=%d", ok, sup)
	}
	if ok, _ := l.allow("k"); ok {
		t.Fatal("third line passed a 2-token refill")
	}
}

// TestServerLogfLimited checks the server-side plumbing: suppressed
// lines increment the telemetry counter and the pass-through line
// carries the suppression notice.
func TestServerLogfLimited(t *testing.T) {
	tel := telemetry.New()
	srv := NewServer(core.New(testConfig()))
	srv.Instrument(tel)
	now := time.Unix(0, 0)
	srv.limiter = newLogLimiter(1, 1, func() time.Time { return now })
	var lines []string
	srv.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for i := 0; i < 4; i++ {
		srv.logfLimited("oversize", "boom %d", i)
	}
	now = now.Add(time.Second)
	srv.logfLimited("oversize", "boom again")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), lines)
	}
	if lines[0] != "boom 0" {
		t.Errorf("first line = %q", lines[0])
	}
	if want := "boom again (3 similar lines suppressed)"; lines[1] != want {
		t.Errorf("second line = %q, want %q", lines[1], want)
	}
	if got := srv.met.suppressedLogs.Value(); got != 3 {
		t.Errorf("suppressed counter = %d, want 3", got)
	}
}

// TestBreakerNotify walks the breaker through its full cycle and checks
// each transition is delivered exactly once, in order.
func TestBreakerNotify(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(2, time.Second, func() time.Time { return now })
	var transitions []string
	b.SetNotify(func(from, to string) {
		transitions = append(transitions, from+">"+to)
	})

	fail := errors.New("remote down")
	b.Allow()
	b.Report(fail)
	b.Allow()
	b.Report(fail) // second failure trips it: closed>open
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() { // cooldown over: open>half-open, probe admitted
		t.Fatal("half-open breaker refused the probe")
	}
	b.Report(fail) // probe failed: half-open>open
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Report(nil) // probe succeeded: half-open>closed

	want := []string{
		"closed>open",
		"open>half-open",
		"half-open>open",
		"open>half-open",
		"half-open>closed",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
	if got := b.State(); got != BreakerClosed {
		t.Errorf("final state = %q", got)
	}
}

// TestTieredInstrumented checks the breaker wiring: transitions reach
// the counter vec and the event tracer.
func TestTieredInstrumented(t *testing.T) {
	tel := telemetry.New()
	tiered := &Tiered{Local: core.New(testConfig()), FailureThreshold: 1, Cooldown: time.Hour}
	tiered.Instrument(tel)

	br := tiered.breaker()
	br.Allow()
	br.Report(errors.New("down")) // closed>open

	out := scrape(t, tel)
	for _, want := range []string{
		`potluck_breaker_transitions_total{to="open"} 1`,
		`potluck_breaker_open 1`,
		`potluck_remote_errors_total 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	events := tel.Trace.Snapshot()
	found := false
	for _, ev := range events {
		if ev.Kind == telemetry.EventBreaker && ev.Detail == "closed->open" {
			found = true
		}
	}
	if !found {
		t.Errorf("no breaker event in trace: %+v", events)
	}
}
