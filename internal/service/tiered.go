package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Tiered chains a device-local cache with a remote Potluck service,
// implementing the paper's cross-device deduplication direction ("We can
// also apply the deduplication concept across devices", §7). Lookups try
// the local cache first and fall through to the remote peer; remote hits
// are adopted into the local cache so subsequent lookups stay local.
// Puts are written through to both tiers.
//
// Values are byte slices at this layer (they cross a device boundary).
//
// The remote tier is strictly best-effort: remote lookup failures
// degrade to a local miss instead of failing the request, and a circuit
// breaker (FailureThreshold consecutive errors → open for Cooldown →
// one half-open probe) keeps a dead or blackholed hub from costing its
// timeout on every lookup. The remote-peer timeout itself lives on the
// Remote client — dial it with a ClientConfig whose RequestTimeout (and
// MaxAttempts, usually 1 for a latency-sensitive hub hop) fits the
// deployment.
type Tiered struct {
	// Local is the on-device cache.
	Local *core.Cache
	// Remote is the peer's service; nil degrades Tiered to local-only.
	Remote *Client
	// AdoptTTL bounds the validity of adopted remote results; 0 uses
	// the local cache's default.
	AdoptTTL time.Duration
	// FailureThreshold is the consecutive remote-error count that trips
	// the breaker; 0 = 3.
	FailureThreshold int
	// Cooldown is how long the tripped breaker refuses remote calls
	// before admitting a probe; 0 = 5s.
	Cooldown time.Duration

	brOnce     sync.Once
	br         *Breaker
	remoteErrs atomic.Int64
}

// breaker lazily builds the circuit breaker so Tiered keeps working as a
// plain struct literal.
func (t *Tiered) breaker() *Breaker {
	t.brOnce.Do(func() {
		t.br = NewBreaker(t.FailureThreshold, t.Cooldown, nil)
	})
	return t.br
}

// BreakerState names the remote tier's breaker state ("closed", "open",
// "half-open") for diagnostics.
func (t *Tiered) BreakerState() string { return t.breaker().State() }

// RemoteErrors counts remote-tier failures absorbed so far (lookups
// degraded to local-only and failed write-throughs).
func (t *Tiered) RemoteErrors() int64 { return t.remoteErrs.Load() }

// TieredResult reports a tiered lookup.
type TieredResult struct {
	Hit bool
	// RemoteHit is true when the value came from the peer.
	RemoteHit bool
	Value     []byte
	// MissedAt supports cost accounting exactly like core.LookupResult.
	MissedAt time.Time
	// Trace is the trace ID the lookup ran under across both tiers: the
	// one passed to LookupTraced, one the local cache minted for a
	// sampled lookup, or one the remote client minted for the hub hop.
	Trace telemetry.TraceID
}

// Lookup queries local then remote. A remote failure is absorbed: the
// breaker records it and the lookup degrades to the local outcome, so a
// dead hub slows nothing but the requests that discover it.
func (t *Tiered) Lookup(function, keyType string, key vec.Vector) (TieredResult, error) {
	return t.LookupTraced(function, keyType, key, 0)
}

// LookupTraced is Lookup under an explicit trace ID: the local probe,
// the remote hop, and the adoption put all record their spans under it,
// so one ID follows the request across the device boundary. trace == 0
// leaves minting to the tiers (the local cache for sampled lookups, the
// remote client for the wire hop).
func (t *Tiered) LookupTraced(function, keyType string, key vec.Vector, trace telemetry.TraceID) (TieredResult, error) {
	// Accept: a non-byte value stored through the in-process API is
	// unavailable at this layer; it must count as a miss, not as a hit
	// the caller never sees.
	res, err := t.Local.LookupOpts(function, keyType, key, core.LookupOptions{
		Accept: isByteValue,
		Trace:  trace,
	})
	if err != nil {
		return TieredResult{Trace: trace}, err
	}
	if trace == 0 {
		// Adopt whatever the local tier minted (still 0 when the lookup
		// went unsampled) so the remote hop shares the ID.
		trace = res.Trace
	}
	if res.Hit {
		return TieredResult{Hit: true, Value: res.Value.([]byte), MissedAt: res.MissedAt, Trace: trace}, nil
	}
	if t.Remote == nil || res.Dropout {
		// Dropout must propagate as a real miss: it is the quality
		// control that keeps both tiers honest.
		return TieredResult{MissedAt: res.MissedAt, Trace: trace}, nil
	}
	if !t.breaker().Allow() {
		return TieredResult{MissedAt: res.MissedAt, Trace: trace}, nil
	}
	rres, err := t.Remote.LookupTraced(function, keyType, key, trace)
	t.breaker().Report(err)
	if err != nil {
		t.remoteErrs.Add(1)
		return TieredResult{MissedAt: res.MissedAt, Trace: trace}, nil
	}
	if trace == 0 {
		trace = rres.Trace // the client always mints for the wire hop
	}
	if !rres.Hit {
		return TieredResult{MissedAt: res.MissedAt, Trace: trace}, nil
	}
	// Adopt the peer's result locally (§2.4: dedup works as long as the
	// previous results are still cached — now across devices). Adoption
	// is an optimization: if the local put is refused (the app is
	// barred, say), the remote hit is still a valid answer — failing
	// the whole lookup would turn a success into an outage.
	t.Local.Put(function, core.PutRequest{
		Keys:  map[string]vec.Vector{keyType: key},
		Value: rres.Value,
		TTL:   t.AdoptTTL,
		App:   "remote-adopt",
		Trace: trace,
	})
	return TieredResult{Hit: true, RemoteHit: true, Value: rres.Value, MissedAt: res.MissedAt, Trace: trace}, nil
}

// MultiLookup batches Lookup: one local batch probe over the core's
// worker group, then the misses forwarded to the remote hub in ONE wire
// frame (not one round trip per miss), with remote hits adopted locally
// in one batch put. The whole remote hop costs a single breaker
// Allow/Report, so a dead hub charges one failure per batch, not per
// key. Results are index-aligned with keys.
//
// All sub-lookups share one function and key type, so a sub-op error
// (unknown function, say) applies to every sibling and fails the batch
// whole.
func (t *Tiered) MultiLookup(function, keyType string, keys []vec.Vector) ([]TieredResult, error) {
	batch := make([]core.BatchLookup, len(keys))
	for i, k := range keys {
		batch[i] = core.BatchLookup{
			Function: function,
			KeyType:  keyType,
			Key:      k,
			Opts:     core.LookupOptions{Accept: isByteValue},
		}
	}
	local := t.Local.MultiLookup(batch)
	out := make([]TieredResult, len(keys))
	var missIdx []int
	for i, r := range local {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = TieredResult{MissedAt: r.MissedAt, Trace: r.Trace}
		switch {
		case r.Hit:
			out[i].Hit = true
			out[i].Value = r.Value.([]byte)
		case r.Dropout:
			// Dropout propagates as a real miss, never forwarded: it is
			// the quality control that keeps both tiers honest.
		default:
			missIdx = append(missIdx, i)
		}
	}
	if t.Remote == nil || len(missIdx) == 0 || !t.breaker().Allow() {
		return out, nil
	}
	subs := make([]LookupSub, len(missIdx))
	for j, i := range missIdx {
		subs[j] = LookupSub{Function: function, KeyType: keyType, Key: keys[i], Trace: uint64(out[i].Trace)}
	}
	rres, err := t.Remote.MultiLookup(subs)
	t.breaker().Report(err)
	if err != nil {
		// Absorbed: the batch degrades to its local outcome.
		t.remoteErrs.Add(1)
		return out, nil
	}
	var adopt []core.BatchPut
	for j, i := range missIdx {
		r := rres[j]
		if r.Err != nil || !r.Hit {
			continue
		}
		out[i].Hit = true
		out[i].RemoteHit = true
		out[i].Value = r.Value
		if out[i].Trace == 0 {
			out[i].Trace = r.Trace
		}
		adopt = append(adopt, core.BatchPut{Function: function, Req: core.PutRequest{
			Keys:  map[string]vec.Vector{keyType: keys[i]},
			Value: r.Value,
			TTL:   t.AdoptTTL,
			App:   "remote-adopt",
			Trace: out[i].Trace,
		}})
	}
	if len(adopt) > 0 {
		// Adoption is an optimization (see LookupTraced); per-sub put
		// failures never fail the batch.
		t.Local.MultiPut(adopt)
	}
	return out, nil
}

// MultiPut batches Put: one local batch insert, one remote frame. Like
// Put, a remote failure does not undo the local writes; the first error
// from either tier is returned so callers can surface it.
func (t *Tiered) MultiPut(function string, subs []PutSub) error {
	batch := make([]core.BatchPut, len(subs))
	for i, sub := range subs {
		batch[i] = core.BatchPut{Function: function, Req: core.PutRequest{
			Keys:  sub.Keys,
			Value: sub.Value,
			Cost:  time.Duration(sub.Cost),
			Size:  int(sub.Size),
			TTL:   time.Duration(sub.TTL),
			Trace: telemetry.TraceID(sub.Trace),
		}}
	}
	var firstErr error
	for _, r := range t.Local.MultiPut(batch) {
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	if t.Remote == nil {
		return firstErr
	}
	if !t.breaker().Allow() {
		t.remoteErrs.Add(1)
		return firstErr
	}
	_, err := t.Remote.MultiPut(subs)
	t.breaker().Report(err)
	if err != nil {
		t.remoteErrs.Add(1)
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Put writes through to both tiers. A remote failure does not undo the
// local write; the error is returned so callers can surface it. While
// the breaker is open the remote write is skipped entirely (counted in
// RemoteErrors) — the local tier remains the source of truth.
func (t *Tiered) Put(function, keyType string, key vec.Vector, value []byte, cost time.Duration) error {
	if _, err := t.Local.Put(function, core.PutRequest{
		Keys:  map[string]vec.Vector{keyType: key},
		Value: value,
		Cost:  cost,
	}); err != nil {
		return err
	}
	if t.Remote == nil {
		return nil
	}
	if !t.breaker().Allow() {
		t.remoteErrs.Add(1)
		return nil
	}
	_, err := t.Remote.Put(function, map[string]vec.Vector{keyType: key}, value, PutOptions{Cost: cost})
	t.breaker().Report(err)
	if err != nil {
		t.remoteErrs.Add(1)
	}
	return err
}
