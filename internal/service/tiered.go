package service

import (
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

// Tiered chains a device-local cache with a remote Potluck service,
// implementing the paper's cross-device deduplication direction ("We can
// also apply the deduplication concept across devices", §7). Lookups try
// the local cache first and fall through to the remote peer; remote hits
// are adopted into the local cache so subsequent lookups stay local.
// Puts are written through to both tiers.
//
// Values are byte slices at this layer (they cross a device boundary).
type Tiered struct {
	// Local is the on-device cache.
	Local *core.Cache
	// Remote is the peer's service; nil degrades Tiered to local-only.
	Remote *Client
	// AdoptTTL bounds the validity of adopted remote results; 0 uses
	// the local cache's default.
	AdoptTTL time.Duration
}

// TieredResult reports a tiered lookup.
type TieredResult struct {
	Hit bool
	// RemoteHit is true when the value came from the peer.
	RemoteHit bool
	Value     []byte
	// MissedAt supports cost accounting exactly like core.LookupResult.
	MissedAt time.Time
}

// Lookup queries local then remote.
func (t *Tiered) Lookup(function, keyType string, key vec.Vector) (TieredResult, error) {
	res, err := t.Local.Lookup(function, keyType, key)
	if err != nil {
		return TieredResult{}, err
	}
	if res.Hit {
		if b, ok := res.Value.([]byte); ok {
			return TieredResult{Hit: true, Value: b, MissedAt: res.MissedAt}, nil
		}
		// A non-byte value was stored through the in-process API; treat
		// it as unavailable at this layer rather than failing.
	}
	if t.Remote == nil || res.Dropout {
		// Dropout must propagate as a real miss: it is the quality
		// control that keeps both tiers honest.
		return TieredResult{MissedAt: res.MissedAt}, nil
	}
	rres, err := t.Remote.Lookup(function, keyType, key)
	if err != nil || !rres.Hit {
		return TieredResult{MissedAt: res.MissedAt}, err
	}
	// Adopt the peer's result locally (§2.4: dedup works as long as the
	// previous results are still cached — now across devices). Adoption
	// is an optimization: if the local put is refused (the app is
	// barred, say), the remote hit is still a valid answer — failing
	// the whole lookup would turn a success into an outage.
	t.Local.Put(function, core.PutRequest{
		Keys:  map[string]vec.Vector{keyType: key},
		Value: rres.Value,
		TTL:   t.AdoptTTL,
		App:   "remote-adopt",
	})
	return TieredResult{Hit: true, RemoteHit: true, Value: rres.Value, MissedAt: res.MissedAt}, nil
}

// Put writes through to both tiers. A remote failure does not undo the
// local write; the error is returned so callers can surface it.
func (t *Tiered) Put(function, keyType string, key vec.Vector, value []byte, cost time.Duration) error {
	if _, err := t.Local.Put(function, core.PutRequest{
		Keys:  map[string]vec.Vector{keyType: key},
		Value: value,
		Cost:  cost,
	}); err != nil {
		return err
	}
	if t.Remote == nil {
		return nil
	}
	_, err := t.Remote.Put(function, map[string]vec.Vector{keyType: key}, value, PutOptions{Cost: cost})
	return err
}
