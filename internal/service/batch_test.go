package service

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

func coreKeySpec() core.KeyTypeSpec { return core.KeyTypeSpec{Name: "k"} }

func newLocalCache(t *testing.T) *core.Cache {
	t.Helper()
	c := core.New(testConfig())
	if err := c.RegisterFunction("f", coreKeySpec()); err != nil {
		t.Fatal(err)
	}
	return c
}

func corePutReq(keyType string, key vec.Vector, value []byte) core.PutRequest {
	return core.PutRequest{Keys: map[string]vec.Vector{keyType: key}, Value: value}
}

// --- batch sub-operation codecs ---

func TestLookupSubsRoundTrip(t *testing.T) {
	subs := []LookupSub{
		{Function: "f", KeyType: "k", Key: vec.Vector{1, 2, 3}, Trace: 7},
		{Function: "g", KeyType: "", Key: vec.Vector{}, Trace: 0},
		{},
	}
	got, err := DecodeLookupSubs(EncodeLookupSubs(subs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d subs, want %d", len(got), len(subs))
	}
	if got[0].Function != "f" || got[0].KeyType != "k" || len(got[0].Key) != 3 || got[0].Trace != 7 {
		t.Fatalf("sub 0 mangled: %+v", got[0])
	}
}

func TestPutSubsRoundTrip(t *testing.T) {
	subs := []PutSub{
		{
			Function: "f",
			Keys:     map[string]vec.Vector{"a": {1}, "b": {2, 3}},
			Value:    []byte("v"), Cost: 5, Size: 6, TTL: 7, Trace: 8,
		},
		{Function: "g"},
	}
	got, err := DecodePutSubs(EncodePutSubs(subs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Cost != 5 || got[0].TTL != 7 || got[0].Trace != 8 {
		t.Fatalf("subs mangled: %+v", got)
	}
	if len(got[0].Keys) != 2 || got[0].Keys["b"][1] != 3 {
		t.Fatalf("key map mangled: %+v", got[0].Keys)
	}
}

func TestSubRepliesRoundTrip(t *testing.T) {
	lr, err := DecodeLookupSubReplies(EncodeLookupSubReplies([]LookupSubReply{
		{Hit: true, Value: []byte("v"), Distance: 0.5, Threshold: 1.5, MissedAt: 9, Trace: 3},
		{Error: "boom"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !lr[0].Hit || string(lr[0].Value) != "v" || lr[0].Distance != 0.5 || lr[1].Error != "boom" {
		t.Fatalf("lookup sub replies mangled: %+v", lr)
	}
	pr, err := DecodePutSubReplies(EncodePutSubReplies([]PutSubReply{
		{ID: 11, Trace: 4}, {Error: "nope"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if pr[0].ID != 11 || pr[0].Trace != 4 || pr[1].Error != "nope" {
		t.Fatalf("put sub replies mangled: %+v", pr)
	}
}

// The per-sub length prefix is the forward-extensibility contract: a
// future encoder appending trailing fields to a sub-op must not break
// today's decoder, which reads the fields it knows and skips the rest.
func TestSubDecoderSkipsTrailingFields(t *testing.T) {
	var e encoder
	e.u32(1) // one sub
	var se encoder
	se.str("f")
	se.str("k")
	se.vector(vec.Vector{1})
	se.u64(42)                                // trace
	se.buf = append(se.buf, 0xAA, 0xBB, 0xCC) // future trailing field
	e.bytes(se.buf)
	subs, err := DecodeLookupSubs(e.buf)
	if err != nil {
		t.Fatalf("trailing sub field broke the decoder: %v", err)
	}
	if subs[0].Function != "f" || subs[0].Trace != 42 {
		t.Fatalf("sub mangled by trailing field: %+v", subs[0])
	}
}

func TestBatchCountLimits(t *testing.T) {
	// Over MaxBatch: rejected with the typed error.
	var e encoder
	e.u32(MaxBatch + 1)
	if _, err := DecodeLookupSubs(e.buf); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversize count error = %v, want ErrBatchTooLarge", err)
	}
	// A hostile count with no bytes behind it is rejected before any
	// allocation sized by it.
	var h encoder
	h.u32(MaxBatch)
	if _, err := DecodePutSubs(h.buf); err == nil {
		t.Error("hostile batch count accepted")
	}
	// Truncated sub frame.
	var tr encoder
	tr.u32(1)
	tr.u32(100) // sub claims 100 bytes, none follow
	if _, err := DecodeLookupSubs(tr.buf); err == nil {
		t.Error("truncated sub frame accepted")
	}
}

// --- end-to-end batch IPC ---

// TestBatchEndToEndOverIPC drives MultiPut then MultiLookup through a
// real server: per-sub results are index-aligned, sub-op errors are
// isolated, and every traced sub-lookup is retained as its own span on
// the hub.
func TestBatchEndToEndOverIPC(t *testing.T) {
	hubTel := telemetry.New()
	cfg := testConfig()
	cfg.Telemetry = hubTel
	srv, sock := startServer(t, cfg)
	srv.Instrument(hubTel)
	cl, err := Dial("unix", sock, "lens")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("recog", KeyTypeDef{Name: "feat"}); err != nil {
		t.Fatal(err)
	}

	puts := make([]PutSub, 8)
	for i := range puts {
		puts[i] = PutSub{
			Function: "recog",
			Keys:     map[string]vec.Vector{"feat": {float64(i), 1}},
			Value:    []byte(fmt.Sprintf("v%d", i)),
		}
	}
	puts = append(puts, PutSub{Function: "nope", Keys: map[string]vec.Vector{"feat": {1}}, Value: []byte("x")})
	prs, err := cl.MultiPut(puts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if prs[i].Err != nil || prs[i].ID == 0 {
			t.Fatalf("put sub %d: id=%d err=%v", i, prs[i].ID, prs[i].Err)
		}
	}
	if prs[8].Err == nil || !strings.Contains(prs[8].Err.Error(), "unknown function") {
		t.Fatalf("bad-function put sub err = %v", prs[8].Err)
	}

	subs := make([]LookupSub, 8)
	traces := make([]telemetry.TraceID, 8)
	for i := range subs {
		traces[i] = telemetry.NewTraceID()
		subs[i] = LookupSub{Function: "recog", KeyType: "feat", Key: vec.Vector{float64(i), 1}, Trace: uint64(traces[i])}
	}
	subs = append(subs, LookupSub{Function: "recog", KeyType: "nope", Key: vec.Vector{1}})
	lrs, err := cl.MultiLookup(subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(lrs) != 9 {
		t.Fatalf("got %d results for 9 subs", len(lrs))
	}
	for i := 0; i < 8; i++ {
		if lrs[i].Err != nil || !lrs[i].Hit || string(lrs[i].Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("lookup sub %d: %+v", i, lrs[i])
		}
		if lrs[i].Trace != traces[i] {
			t.Errorf("sub %d trace = %s, want %s", i, lrs[i].Trace, traces[i])
		}
	}
	if lrs[8].Err == nil {
		t.Fatal("unknown key type sub succeeded")
	}
	// One span per traced sub-op on the hub (PR 5 discipline), not one
	// blurred span per batch.
	for i, tr := range traces {
		if len(hubTel.Spans.Find(tr)) == 0 {
			t.Errorf("sub %d: trace %s not retained on hub", i, tr)
		}
	}
}

// TestPipelinedConcurrentRoundTrips hammers one client from many
// goroutines: replies must match their requests (a FIFO mismatch would
// surface as the wrong value), and nothing deadlocks under -race.
func TestPipelinedConcurrentRoundTrips(t *testing.T) {
	_, sock := startServer(t, testConfig())
	cl, err := Dial("unix", sock, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := cl.Put("f", map[string]vec.Vector{"k": {float64(i), 5}}, []byte(fmt.Sprintf("v%d", i)), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				res, err := cl.Lookup("f", "k", vec.Vector{float64(i), 5})
				if err != nil {
					errs <- fmt.Errorf("lookup %d: %w", i, err)
					return
				}
				if !res.Hit || string(res.Value) != fmt.Sprintf("v%d", i) {
					errs <- fmt.Errorf("lookup %d got %+v (reply mismatched to request?)", i, res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- mixed-version batch IPC ---

// oldStyleServe replicates the PR 5-era server loop on a raw connection:
// today's envelope decoding, but a dispatch switch that predates the
// batch message types — its default branch answers MsgReplyError and
// keeps serving, exactly like the shipped binary would.
func oldStyleServe(conn net.Conn) {
	defer conn.Close()
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(payload)
		var reply *Reply
		switch {
		case err != nil:
			reply = &Reply{Type: MsgReplyError, Error: err.Error()}
		case req.Type == MsgStats:
			reply = &Reply{Type: MsgReplyStats, Stats: StatsPayload{Hits: 1}}
		case req.Type == MsgRegister || req.Type == MsgLookup || req.Type == MsgPut:
			reply = &Reply{Type: MsgReplyOK}
		default:
			reply = &Reply{Type: MsgReplyError, Error: fmt.Sprintf("unknown request type %d", req.Type)}
		}
		if err := WriteFrame(conn, EncodeReply(reply)); err != nil {
			return
		}
	}
}

// A new client's batch against an old-style server must fail with the
// server's clean error — not a torn connection — and the SAME connection
// must keep serving single ops afterwards. The client wraps a pipe, so
// any poison/redial would surface as ErrConnBroken.
func TestNewClientBatchAgainstOldServer(t *testing.T) {
	cconn, sconn := net.Pipe()
	go oldStyleServe(sconn)
	cl := NewClientConn(cconn, "app")
	cl.cfg.RequestTimeout = 2 * time.Second
	defer cl.Close()

	_, err := cl.MultiLookup([]LookupSub{{Function: "f", KeyType: "k", Key: vec.Vector{1}}})
	if err == nil {
		t.Fatal("batch against old server succeeded")
	}
	if errors.Is(err, ErrConnBroken) {
		t.Fatalf("batch against old server broke the connection: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown request type") {
		t.Fatalf("batch error = %v, want the server's unknown-type reply", err)
	}
	// Same wrapped connection, next request: still healthy.
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("connection unusable after rejected batch: %v", err)
	}
	if st.Hits != 1 {
		t.Fatalf("stats reply mangled after rejected batch: %+v", st)
	}
}

// An old client against the new server is byte-identical to today: the
// single-op encoders are untouched, and the new server's replies still
// parse with the pre-batch reply decoder.
func TestOldClientAgainstNewServer(t *testing.T) {
	_, sock := startServer(t, testConfig())
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	exchangeOld := func(req *Request) *Reply {
		t.Helper()
		if err := WriteFrame(conn, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := oldDecodeReply(payload)
		if err != nil {
			t.Fatalf("new server's reply unreadable by old decoder: %v", err)
		}
		return reply
	}
	if r := exchangeOld(&Request{Type: MsgRegister, Function: "f", KeyTypes: []KeyTypeDef{{Name: "k"}}}); r.Type != MsgReplyOK {
		t.Fatalf("register reply: %+v", r)
	}
	if r := exchangeOld(&Request{Type: MsgPut, Function: "f", Keys: map[string]vec.Vector{"k": {1}}, Value: []byte("v")}); r.Type != MsgReplyPut || r.ID == 0 {
		t.Fatalf("put reply: %+v", r)
	}
	r := exchangeOld(&Request{Type: MsgLookup, Function: "f", KeyType: "k", Key: vec.Vector{1}})
	if r.Type != MsgReplyLookup || !r.Hit || !bytes.Equal(r.Value, []byte("v")) {
		t.Fatalf("lookup reply: %+v", r)
	}
}

// TestOversizeBatchReplySoftError: a batch whose reply frame would
// exceed MaxMessageSize gets an in-band MsgReplyError — WriteFrame
// rejects the payload before any bytes hit the wire, so the server must
// keep the connection, not cut it.
func TestOversizeBatchReplySoftError(t *testing.T) {
	_, sock := startServer(t, testConfig())
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	exchange := func(req *Request) *Reply {
		t.Helper()
		if err := WriteFrame(conn, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := DecodeReply(payload)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if r := exchange(&Request{Type: MsgRegister, Function: "f", KeyTypes: []KeyTypeDef{{Name: "k"}}}); r.Type != MsgReplyOK {
		t.Fatalf("register reply: %+v", r)
	}
	// Two 9 MiB values: each put frame fits under the 16 MiB cap, but a
	// batch reply carrying both cannot.
	big := bytes.Repeat([]byte("x"), 9<<20)
	for i := 0; i < 2; i++ {
		if r := exchange(&Request{Type: MsgPut, Function: "f", Keys: map[string]vec.Vector{"k": {float64(i)}}, Value: big}); r.Type != MsgReplyPut {
			t.Fatalf("put %d reply: %+v", i, r)
		}
	}
	r := exchange(&Request{Type: MsgMultiLookup, Value: EncodeLookupSubs([]LookupSub{
		{Function: "f", KeyType: "k", Key: vec.Vector{0}},
		{Function: "f", KeyType: "k", Key: vec.Vector{1}},
	})})
	if r.Type != MsgReplyError || !strings.Contains(r.Error, "size limit") {
		t.Fatalf("oversize batch reply = %+v, want in-band size-limit error", r)
	}
	// The connection survived: a small batch still serves on it.
	r = exchange(&Request{Type: MsgMultiLookup, Value: EncodeLookupSubs([]LookupSub{
		{Function: "f", KeyType: "k", Key: vec.Vector{0}},
	})})
	if r.Type != MsgReplyMultiLookup {
		t.Fatalf("post-oversize batch reply = %+v", r)
	}
	subs, err := DecodeLookupSubReplies(r.Value)
	if err != nil || len(subs) != 1 || !subs[0].Hit {
		t.Fatalf("post-oversize sub replies = %+v, %v", subs, err)
	}
}

// TestTieredMultiLookupBatchThrough: local misses travel to the hub in
// one frame, remote hits are adopted locally in one batch, and the next
// batch serves entirely locally.
func TestTieredMultiLookupBatchThrough(t *testing.T) {
	srv, sock := startServer(t, testConfig())
	if err := srv.Cache().RegisterFunction("f", coreKeySpec()); err != nil {
		t.Fatal(err)
	}
	remote, err := Dial("unix", sock, "device-b")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := newLocalCache(t)

	// Seed the hub only.
	keys := []vec.Vector{{1, 0}, {2, 0}, {3, 0}}
	for i, k := range keys {
		if _, err := remote.Put("f", map[string]vec.Vector{"k": k}, []byte(fmt.Sprintf("hub%d", i)), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// And one key locally, to prove local hits skip the remote hop.
	if _, err := local.Put("f", corePutReq("k", vec.Vector{9, 0}, []byte("local"))); err != nil {
		t.Fatal(err)
	}

	tr := &Tiered{Local: local, Remote: remote}
	out, err := tr.MultiLookup("f", "k", append(keys, vec.Vector{9, 0}, vec.Vector{50, 0}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !out[i].Hit || !out[i].RemoteHit || string(out[i].Value) != fmt.Sprintf("hub%d", i) {
			t.Fatalf("sub %d: %+v", i, out[i])
		}
	}
	if !out[3].Hit || out[3].RemoteHit || string(out[3].Value) != "local" {
		t.Fatalf("local sub: %+v", out[3])
	}
	if out[4].Hit {
		t.Fatalf("absent key hit: %+v", out[4])
	}

	// Adoption: the same batch now serves with zero remote traffic.
	remote.Close() // hub gone
	out2, err := tr.MultiLookup("f", "k", keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !out2[i].Hit || out2[i].RemoteHit {
			t.Fatalf("adopted sub %d not local: %+v", i, out2[i])
		}
	}
}

// TestTieredMultiPutWritesThrough: one batch lands in both tiers.
func TestTieredMultiPutWritesThrough(t *testing.T) {
	srv, sock := startServer(t, testConfig())
	if err := srv.Cache().RegisterFunction("f", coreKeySpec()); err != nil {
		t.Fatal(err)
	}
	remote, err := Dial("unix", sock, "device-b")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := newLocalCache(t)
	tr := &Tiered{Local: local, Remote: remote}

	subs := make([]PutSub, 4)
	for i := range subs {
		subs[i] = PutSub{Function: "f", Keys: map[string]vec.Vector{"k": {float64(i), 2}}, Value: []byte{byte(i)}}
	}
	if err := tr.MultiPut("f", subs); err != nil {
		t.Fatal(err)
	}
	for i := range subs {
		res, err := local.Lookup("f", "k", vec.Vector{float64(i), 2})
		if err != nil || !res.Hit {
			t.Fatalf("local sub %d: %+v %v", i, res, err)
		}
		rres, err := remote.Lookup("f", "k", vec.Vector{float64(i), 2})
		if err != nil || !rres.Hit {
			t.Fatalf("remote sub %d: %+v %v", i, rres, err)
		}
	}
}
