package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// ErrConnBroken marks a connection that suffered an I/O failure mid
// round trip. The request/reply framing on such a connection can no
// longer be trusted — a late reply to the failed request could be read
// as the answer to the next one — so the connection is poisoned and
// never reused; the next request redials (or fails fast when the client
// wraps a connection it cannot redial).
var ErrConnBroken = errors.New("service: connection broken")

// ErrClientClosed is returned by requests issued after (or interrupted
// by) Close.
var ErrClientClosed = errors.New("service: client closed")

// ClientConfig tunes the client's robustness behaviour. The zero value
// selects production defaults; negative durations disable the
// corresponding limit.
type ClientConfig struct {
	// RequestTimeout bounds one round trip (request write + reply read).
	// A request that overruns it fails and poisons the connection.
	// 0 = 30s; < 0 = no limit.
	RequestTimeout time.Duration
	// DialTimeout bounds each (re)connect attempt. 0 = 5s; < 0 = no limit.
	DialTimeout time.Duration
	// MaxAttempts is the number of tries a request gets across
	// reconnects, the first included. It only applies to connection
	// failures: errors the server itself replies with are never retried.
	// 0 = 3; values < 1 mean one attempt.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles per
	// attempt up to BackoffMax, with ±50% jitter so a fleet of clients
	// does not redial a recovering server in lockstep. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts < 1 {
		if cfg.MaxAttempts == 0 {
			cfg.MaxAttempts = 3
		} else {
			cfg.MaxAttempts = 1
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	return cfg
}

// Client is an application's handle to the Potluck service, wrapping the
// register()/lookup()/put() API of §4.3 over the wire protocol. It is
// safe for concurrent use; requests are serialized over one connection,
// matching Binder's synchronous transaction model.
//
// The client survives service restarts: a failed round trip poisons the
// current connection and the next request transparently redials with
// capped exponential backoff. Close is always prompt, even while a
// request is blocked on a dead server.
type Client struct {
	app     string
	cfg     ClientConfig
	network string
	addr    string // empty when wrapping a caller-supplied conn (no redial)

	// reqMu serializes round trips. Close deliberately does not take it:
	// a roundtrip stuck on a dead server holds reqMu indefinitely, and
	// Close must still be able to cut the connection out from under it.
	reqMu sync.Mutex

	// stateMu guards the connection and its lifecycle flags. It is never
	// held across network I/O.
	stateMu sync.Mutex
	conn    net.Conn
	broken  bool
	closed  bool

	// met holds the reconnect-path counters; nil until Instrument.
	met atomic.Pointer[clientMetrics]
}

// Dial connects to a Potluck service with default robustness settings.
// app names the calling application for reputation tracking and
// diagnostics.
func Dial(network, addr, app string) (*Client, error) {
	return DialConfig(network, addr, app, ClientConfig{})
}

// DialConfig connects to a Potluck service with explicit robustness
// settings.
func DialConfig(network, addr, app string, cfg ClientConfig) (*Client, error) {
	c := &Client{app: app, cfg: cfg.withDefaults(), network: network, addr: addr}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// NewClientConn wraps an existing connection (e.g. a net.Pipe in tests).
// Such a client cannot redial: once the connection is poisoned, requests
// fail with ErrConnBroken.
func NewClientConn(conn net.Conn, app string) *Client {
	return &Client{app: app, cfg: ClientConfig{}.withDefaults(), conn: conn}
}

func (c *Client) dial() (net.Conn, error) {
	var (
		conn net.Conn
		err  error
	)
	if c.cfg.DialTimeout > 0 {
		conn, err = net.DialTimeout(c.network, c.addr, c.cfg.DialTimeout)
	} else {
		conn, err = net.Dial(c.network, c.addr)
	}
	if err != nil {
		return nil, fmt.Errorf("service: dial %s/%s: %w", c.network, c.addr, err)
	}
	return conn, nil
}

// Close releases the connection. It never waits for an in-flight round
// trip: closing the underlying connection is what unblocks one stuck on
// a dead server.
func (c *Client) Close() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.stateMu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// acquireConn returns a healthy connection, redialing if the previous
// one was poisoned. Dialing happens with no lock held so Close stays
// prompt; only the reqMu holder calls this, so the conn slot cannot be
// raced by another request.
func (c *Client) acquireConn() (net.Conn, error) {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil && !c.broken {
		conn := c.conn
		c.stateMu.Unlock()
		return conn, nil
	}
	if c.network == "" {
		c.stateMu.Unlock()
		return nil, ErrConnBroken
	}
	old := c.conn
	c.conn = nil
	c.broken = false
	c.stateMu.Unlock()
	if old != nil {
		old.Close()
	}

	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	if m := c.met.Load(); m != nil {
		m.redials.Inc()
	}
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	c.conn = conn
	c.stateMu.Unlock()
	return conn, nil
}

// poison marks conn unusable and closes it. Subsequent requests redial
// instead of reading a stale reply off a desynchronized stream.
func (c *Client) poison(conn net.Conn) {
	c.stateMu.Lock()
	if c.conn == conn {
		c.broken = true
	}
	c.stateMu.Unlock()
	if m := c.met.Load(); m != nil {
		m.broken.Inc()
	}
	conn.Close()
}

// exchange performs one framed request/reply on conn. Any I/O or framing
// failure poisons the connection and is wrapped in ErrConnBroken; an
// error the server replied with leaves the connection healthy.
func (c *Client) exchange(conn net.Conn, frame []byte) (*Reply, error) {
	if c.cfg.RequestTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := WriteFrame(conn, frame); err != nil {
		c.poison(conn)
		return nil, fmt.Errorf("%w: write: %w", ErrConnBroken, err)
	}
	payload, err := ReadFrame(conn)
	if err != nil {
		c.poison(conn)
		return nil, fmt.Errorf("%w: read: %w", ErrConnBroken, err)
	}
	reply, err := DecodeReply(payload)
	if err != nil {
		// A reply we cannot parse means the stream is desynchronized.
		c.poison(conn)
		return nil, fmt.Errorf("%w: %w", ErrConnBroken, err)
	}
	if reply.Type == MsgReplyError {
		return nil, fmt.Errorf("service: %s", reply.Error)
	}
	return reply, nil
}

// backoff returns the pre-retry delay for the given attempt: exponential
// from BackoffBase, capped at BackoffMax, with ±50% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 0; i < attempt && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// roundTrip sends one request and reads one reply, redialing and
// retrying on connection failures up to MaxAttempts.
func (c *Client) roundTrip(req *Request) (*Reply, error) {
	req.App = c.app
	frame := EncodeRequest(req)
	if len(frame) > MaxMessageSize {
		// Reject before any bytes hit the wire (the server would cut the
		// connection on the oversize prefix); the connection stays clean.
		return nil, fmt.Errorf("%w: request is %d bytes", ErrMessageTooLarge, len(frame))
	}
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if m := c.met.Load(); m != nil {
				m.retries.Inc()
			}
			time.Sleep(c.backoff(attempt - 1))
		}
		conn, err := c.acquireConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) || errors.Is(err, ErrConnBroken) {
				// Closed, or poisoned with no redial path: retrying
				// cannot help.
				return nil, err
			}
			lastErr = err // dial failure: back off and retry
			continue
		}
		reply, err := c.exchange(conn, frame)
		if err == nil {
			return reply, nil
		}
		if !errors.Is(err, ErrConnBroken) {
			return nil, err // the server answered; its error is final
		}
		lastErr = err
		if c.network == "" {
			return nil, err // cannot redial a wrapped connection
		}
	}
	return nil, lastErr
}

// Register registers a function and its key types with the service
// (§4.3: "registers a handle with the cache service ... and initializes
// the application-specific key index. It also resets the input
// similarity threshold").
func (c *Client) Register(function string, keyTypes ...KeyTypeDef) error {
	if len(keyTypes) == 0 {
		return errors.New("service: at least one key type required")
	}
	_, err := c.roundTrip(&Request{
		Type:     MsgRegister,
		Function: function,
		KeyTypes: keyTypes,
	})
	return err
}

// LookupResult is the client-side view of a lookup outcome.
type LookupResult struct {
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	// MissedAt is the server clock time of a miss; pass it back to Put
	// so the service can compute the computation overhead.
	MissedAt time.Time
	// Trace is the trace ID this lookup ran under end to end: the one
	// passed to LookupTraced, or one the client minted. The server-side
	// spans for the request are retained under the same ID.
	Trace telemetry.TraceID
}

// Lookup queries the cache. Every client lookup carries a trace ID
// (minted here when the caller did not supply one via LookupTraced), so
// the server's /trace/spans and /debug/explain endpoints observe traffic
// from uninstrumented clients too; the ID costs eight bytes on the wire.
func (c *Client) Lookup(function, keyType string, key vec.Vector) (LookupResult, error) {
	return c.LookupTraced(function, keyType, key, 0)
}

// LookupTraced queries the cache under an explicit trace ID, correlating
// the server-side spans with the caller's own. trace == 0 mints a fresh
// ID. When the client is instrumented, the round trip is recorded as a
// client-layer span (stage "ipc") under the same ID.
func (c *Client) LookupTraced(function, keyType string, key vec.Vector, trace telemetry.TraceID) (LookupResult, error) {
	if trace == 0 {
		trace = telemetry.NewTraceID()
	}
	m := c.met.Load()
	var start time.Time
	if m != nil && m.spans != nil {
		start = time.Now()
	}
	reply, err := c.roundTrip(&Request{
		Type:     MsgLookup,
		Function: function,
		KeyType:  keyType,
		Key:      key,
		Trace:    uint64(trace),
	})
	if m != nil && m.spans != nil {
		recordClientSpan(m.spans, start, trace, function, keyType, reply, err)
	}
	if err != nil {
		return LookupResult{}, err
	}
	res := LookupResult{
		Hit:       reply.Hit,
		Dropout:   reply.Dropout,
		Value:     reply.Value,
		Distance:  reply.Distance,
		Threshold: reply.Threshold,
		MissedAt:  time.Unix(0, reply.MissedAt),
		Trace:     telemetry.TraceID(reply.Trace),
	}
	if res.Trace == 0 {
		// Older server: no echo on the wire; the request still carried
		// our ID, so report the one we sent.
		res.Trace = trace
	}
	return res, nil
}

// recordClientSpan records the application-side view of one traced round
// trip: the ipc stage spans request encode to reply decode, so the gap
// between it and the server's serve-stage duration is wire + framing
// time.
func recordClientSpan(spans *telemetry.SpanRecorder, start time.Time, trace telemetry.TraceID,
	function, keyType string, reply *Reply, err error) {
	dur := time.Since(start)
	sp := telemetry.Span{
		Trace:       trace,
		Start:       start.UnixNano(),
		DurationNs:  int64(dur),
		Layer:       "client",
		Function:    function,
		KeyType:     keyType,
		Distance:    -1,
		DropoutRoll: -1,
		Probes:      -1,
		Stages: []telemetry.SpanStage{{
			Name: telemetry.StageIPC, DurationNs: int64(dur),
		}},
	}
	switch {
	case err != nil:
		sp.Outcome = telemetry.OutcomeError
		sp.Err = err.Error()
	case reply.Type == MsgReplyPut:
		sp.Outcome = telemetry.OutcomePut
	case reply.Dropout:
		sp.Outcome = telemetry.OutcomeDropout
	case reply.Hit:
		sp.Outcome = telemetry.OutcomeHit
		sp.Distance = reply.Distance
		sp.Threshold = reply.Threshold
	default:
		sp.Outcome = telemetry.OutcomeMiss
		sp.Distance = reply.Distance
		sp.Threshold = reply.Threshold
	}
	spans.Record(sp)
}

// PutOptions carries the optional fields of a put.
type PutOptions struct {
	// Cost is the measured computation overhead.
	Cost time.Duration
	// Size overrides the entry-size estimate.
	Size int
	// TTL overrides the service's default validity period.
	TTL time.Duration
	// Trace correlates the put with the lookup that missed (pass the
	// LookupResult's Trace). 0 leaves the put untraced.
	Trace telemetry.TraceID
}

// Put inserts a computed result under one or more keys.
func (c *Client) Put(function string, keys map[string]vec.Vector, value []byte, opts PutOptions) (uint64, error) {
	m := c.met.Load()
	var start time.Time
	if m != nil && m.spans != nil && opts.Trace != 0 {
		start = time.Now()
	}
	reply, err := c.roundTrip(&Request{
		Type:     MsgPut,
		Function: function,
		Keys:     keys,
		Value:    value,
		Cost:     int64(opts.Cost),
		Size:     int64(opts.Size),
		TTL:      int64(opts.TTL),
		Trace:    uint64(opts.Trace),
	})
	if m != nil && m.spans != nil && opts.Trace != 0 {
		recordClientSpan(m.spans, start, opts.Trace, function, "", reply, err)
	}
	if err != nil {
		return 0, err
	}
	return reply.ID, nil
}

// Stats fetches the service's cache counters.
func (c *Client) Stats() (StatsPayload, error) {
	reply, err := c.roundTrip(&Request{Type: MsgStats})
	if err != nil {
		return StatsPayload{}, err
	}
	return reply.Stats, nil
}
