package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/vec"
)

// Client is an application's handle to the Potluck service, wrapping the
// register()/lookup()/put() API of §4.3 over the wire protocol. It is
// safe for concurrent use; requests are serialized over one connection,
// matching Binder's synchronous transaction model.
type Client struct {
	app  string
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a Potluck service. app names the calling application
// for reputation tracking and diagnostics.
func Dial(network, addr, app string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s/%s: %w", network, addr, err)
	}
	return &Client{app: app, conn: conn}, nil
}

// NewClientConn wraps an existing connection (e.g. a net.Pipe in tests).
func NewClientConn(conn net.Conn, app string) *Client {
	return &Client{app: app, conn: conn}
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads one reply.
func (c *Client) roundTrip(req *Request) (*Reply, error) {
	req.App = c.app
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	reply, err := DecodeReply(payload)
	if err != nil {
		return nil, err
	}
	if reply.Type == MsgReplyError {
		return nil, fmt.Errorf("service: %s", reply.Error)
	}
	return reply, nil
}

// Register registers a function and its key types with the service
// (§4.3: "registers a handle with the cache service ... and initializes
// the application-specific key index. It also resets the input
// similarity threshold").
func (c *Client) Register(function string, keyTypes ...KeyTypeDef) error {
	if len(keyTypes) == 0 {
		return errors.New("service: at least one key type required")
	}
	_, err := c.roundTrip(&Request{
		Type:     MsgRegister,
		Function: function,
		KeyTypes: keyTypes,
	})
	return err
}

// LookupResult is the client-side view of a lookup outcome.
type LookupResult struct {
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	// MissedAt is the server clock time of a miss; pass it back to Put
	// so the service can compute the computation overhead.
	MissedAt time.Time
}

// Lookup queries the cache.
func (c *Client) Lookup(function, keyType string, key vec.Vector) (LookupResult, error) {
	reply, err := c.roundTrip(&Request{
		Type:     MsgLookup,
		Function: function,
		KeyType:  keyType,
		Key:      key,
	})
	if err != nil {
		return LookupResult{}, err
	}
	return LookupResult{
		Hit:       reply.Hit,
		Dropout:   reply.Dropout,
		Value:     reply.Value,
		Distance:  reply.Distance,
		Threshold: reply.Threshold,
		MissedAt:  time.Unix(0, reply.MissedAt),
	}, nil
}

// PutOptions carries the optional fields of a put.
type PutOptions struct {
	// Cost is the measured computation overhead.
	Cost time.Duration
	// Size overrides the entry-size estimate.
	Size int
	// TTL overrides the service's default validity period.
	TTL time.Duration
}

// Put inserts a computed result under one or more keys.
func (c *Client) Put(function string, keys map[string]vec.Vector, value []byte, opts PutOptions) (uint64, error) {
	reply, err := c.roundTrip(&Request{
		Type:     MsgPut,
		Function: function,
		Keys:     keys,
		Value:    value,
		Cost:     int64(opts.Cost),
		Size:     int64(opts.Size),
		TTL:      int64(opts.TTL),
	})
	if err != nil {
		return 0, err
	}
	return reply.ID, nil
}

// Stats fetches the service's cache counters.
func (c *Client) Stats() (StatsPayload, error) {
	reply, err := c.roundTrip(&Request{Type: MsgStats})
	if err != nil {
		return StatsPayload{}, err
	}
	return reply.Stats, nil
}
