package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// ErrConnBroken marks a connection that suffered an I/O failure mid
// round trip. The request/reply framing on such a connection can no
// longer be trusted — a late reply to the failed request could be read
// as the answer to the next one — so the connection is poisoned and
// never reused; the next request redials (or fails fast when the client
// wraps a connection it cannot redial).
var ErrConnBroken = errors.New("service: connection broken")

// ErrClientClosed is returned by requests issued after (or interrupted
// by) Close.
var ErrClientClosed = errors.New("service: client closed")

// ClientConfig tunes the client's robustness behaviour. The zero value
// selects production defaults; negative durations disable the
// corresponding limit.
type ClientConfig struct {
	// RequestTimeout bounds one round trip (request write + reply read).
	// A request that overruns it fails and poisons the connection.
	// 0 = 30s; < 0 = no limit.
	RequestTimeout time.Duration
	// DialTimeout bounds each (re)connect attempt. 0 = 5s; < 0 = no limit.
	DialTimeout time.Duration
	// MaxAttempts is the number of tries a request gets across
	// reconnects, the first included. It only applies to connection
	// failures: errors the server itself replies with are never retried.
	// 0 = 3; values < 1 mean one attempt.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles per
	// attempt up to BackoffMax, with ±50% jitter so a fleet of clients
	// does not redial a recovering server in lockstep. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts < 1 {
		if cfg.MaxAttempts == 0 {
			cfg.MaxAttempts = 3
		} else {
			cfg.MaxAttempts = 1
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	return cfg
}

// replyOrErr is one round trip's terminal outcome, delivered to its
// waiter exactly once.
type replyOrErr struct {
	reply *Reply
	err   error
}

// clientConn is one live connection with pipelined framing: concurrent
// round trips interleave on the wire instead of serializing behind each
// other. Writes are serialized under writeMu; a single reader goroutine
// matches replies to waiters in FIFO order (the server processes a
// connection's requests sequentially, so reply order equals request
// order).
//
// Correctness hinges on three rules:
//
//  1. The pending-queue append happens under writeMu BEFORE the frame
//     write, so queue order always matches wire order and a fast reply
//     can never arrive before its waiter is enqueued.
//  2. pendMu is never held across I/O — a writer blocked on a stuffed
//     socket must not be able to wedge the reader (or Close).
//  3. Each waiter channel receives exactly one send: the reader's pop
//     and fail's drain both happen under pendMu, and a popped channel
//     is owned by whoever popped it. Channels are buffered (capacity 1)
//     so delivery never blocks on a waiter that already timed out.
//
// Any failure — read, write, decode, timeout, unsolicited reply —
// poisons the whole connection: the framing can no longer be trusted,
// so every in-flight round trip fails and the next request redials.
type clientConn struct {
	conn net.Conn

	// writeMu serializes frame writes (and the pending append that must
	// precede each one).
	writeMu sync.Mutex

	// pendMu guards pending and err; never held across I/O.
	pendMu  sync.Mutex
	pending []chan replyOrErr
	err     error // non-nil once poisoned; sticky

	// onBroken is invoked once when the connection is poisoned by a
	// failure (not by Close); nil disables.
	onBroken func()
}

func newClientConn(conn net.Conn, onBroken func()) *clientConn {
	cc := &clientConn{conn: conn, onBroken: onBroken}
	go cc.readLoop()
	return cc
}

// readLoop is the connection's single reader: it decodes replies and
// delivers each to the oldest waiter. It exits when the connection
// fails or is closed.
func (cc *clientConn) readLoop() {
	for {
		payload, err := ReadFrame(cc.conn)
		if err != nil {
			cc.fail(fmt.Errorf("%w: read: %w", ErrConnBroken, err))
			return
		}
		reply, err := DecodeReply(payload)
		if err != nil {
			// A reply we cannot parse means the stream is desynchronized.
			cc.fail(fmt.Errorf("%w: %w", ErrConnBroken, err))
			return
		}
		cc.pendMu.Lock()
		if len(cc.pending) == 0 {
			cc.pendMu.Unlock()
			cc.fail(fmt.Errorf("%w: unsolicited reply", ErrConnBroken))
			return
		}
		ch := cc.pending[0]
		cc.pending = cc.pending[1:]
		cc.pendMu.Unlock()
		ch <- replyOrErr{reply: reply}
	}
}

// fail poisons the connection: the first failure wins, every in-flight
// waiter receives it, and the underlying conn is closed (unblocking the
// reader and any stuck writer).
func (cc *clientConn) fail(err error) {
	cc.pendMu.Lock()
	if cc.err != nil {
		cc.pendMu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.pendMu.Unlock()
	cc.conn.Close()
	if cc.onBroken != nil && !errors.Is(err, ErrClientClosed) {
		cc.onBroken()
	}
	for _, ch := range pending {
		ch <- replyOrErr{err: err}
	}
}

// healthy reports whether the connection can still carry requests.
func (cc *clientConn) healthy() bool {
	cc.pendMu.Lock()
	defer cc.pendMu.Unlock()
	return cc.err == nil
}

// send performs one pipelined round trip: enqueue the waiter, write the
// frame, wait for the FIFO-matched reply. timeout bounds the whole trip
// (<= 0 means no limit); an overrun poisons the connection, because a
// reply we walked away from would desynchronize the stream.
func (cc *clientConn) send(frame []byte, timeout time.Duration) (*Reply, error) {
	ch := make(chan replyOrErr, 1)
	cc.writeMu.Lock()
	cc.pendMu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.pendMu.Unlock()
		cc.writeMu.Unlock()
		return nil, err
	}
	cc.pending = append(cc.pending, ch)
	cc.pendMu.Unlock()
	if timeout > 0 {
		cc.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := WriteFrame(cc.conn, frame)
	if timeout > 0 {
		cc.conn.SetWriteDeadline(time.Time{})
	}
	cc.writeMu.Unlock()
	if err != nil {
		// The frame may be partially written: the stream is unusable.
		cc.fail(fmt.Errorf("%w: write: %w", ErrConnBroken, err))
		r := <-ch // fail (or a racing reply) settles our channel
		return r.reply, r.err
	}
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case r := <-ch:
			return r.reply, r.err
		case <-timer.C:
			cc.fail(fmt.Errorf("%w: request timed out after %v", ErrConnBroken, timeout))
			r := <-ch
			return r.reply, r.err
		}
	}
	r := <-ch
	return r.reply, r.err
}

// Client is an application's handle to the Potluck service, wrapping the
// register()/lookup()/put() API of §4.3 over the wire protocol. It is
// safe for concurrent use; concurrent requests are pipelined over one
// connection (framing interleaves on the wire, replies are matched back
// in FIFO order), so a batch in flight never serializes behind a slow
// single lookup.
//
// The client survives service restarts: a failed round trip poisons the
// current connection and the next request transparently redials with
// capped exponential backoff. Close is always prompt, even while a
// request is blocked on a dead server.
type Client struct {
	app     string
	cfg     ClientConfig
	network string
	addr    string // empty when wrapping a caller-supplied conn (no redial)

	// dialMu serializes redials so a burst of requests hitting a
	// poisoned connection dials once, not once each. Close deliberately
	// does not take it: Close must stay prompt while a dial is stuck.
	dialMu sync.Mutex

	// stateMu guards the connection slot and lifecycle flags. It is
	// never held across network I/O.
	stateMu sync.Mutex
	cc      *clientConn
	closed  bool

	// met holds the reconnect-path counters; nil until Instrument.
	met atomic.Pointer[clientMetrics]
}

// Dial connects to a Potluck service with default robustness settings.
// app names the calling application for reputation tracking and
// diagnostics.
func Dial(network, addr, app string) (*Client, error) {
	return DialConfig(network, addr, app, ClientConfig{})
}

// DialConfig connects to a Potluck service with explicit robustness
// settings.
func DialConfig(network, addr, app string, cfg ClientConfig) (*Client, error) {
	c := &Client{app: app, cfg: cfg.withDefaults(), network: network, addr: addr}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.cc = newClientConn(conn, c.countBroken)
	return c, nil
}

// NewLazyClient returns a client that has not dialed yet: the first
// request triggers the connect. A mesh boots its peer clients this way
// because peers come up in arbitrary order — an eager dial at daemon
// start would fail on any peer that is not listening yet, while the
// breaker in front of a lazy client absorbs early connection failures
// and re-probes on its own schedule.
func NewLazyClient(network, addr, app string, cfg ClientConfig) *Client {
	return &Client{app: app, cfg: cfg.withDefaults(), network: network, addr: addr}
}

// NewClientConn wraps an existing connection (e.g. a net.Pipe in tests).
// Such a client cannot redial: once the connection is poisoned, requests
// fail with ErrConnBroken.
func NewClientConn(conn net.Conn, app string) *Client {
	c := &Client{app: app, cfg: ClientConfig{}.withDefaults()}
	c.cc = newClientConn(conn, c.countBroken)
	return c
}

func (c *Client) countBroken() {
	if m := c.met.Load(); m != nil {
		m.broken.Inc()
	}
}

func (c *Client) dial() (net.Conn, error) {
	var (
		conn net.Conn
		err  error
	)
	if c.cfg.DialTimeout > 0 {
		conn, err = net.DialTimeout(c.network, c.addr, c.cfg.DialTimeout)
	} else {
		conn, err = net.Dial(c.network, c.addr)
	}
	if err != nil {
		return nil, fmt.Errorf("service: dial %s/%s: %w", c.network, c.addr, err)
	}
	return conn, nil
}

// Close releases the connection. It never waits for an in-flight round
// trip: failing the connection out from under one is what unblocks it.
func (c *Client) Close() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.stateMu.Unlock()
	if cc != nil {
		cc.fail(ErrClientClosed)
	}
	return nil
}

// acquireConn returns a healthy connection, redialing if the previous
// one was poisoned. Dialing happens under dialMu with no state lock
// held, so Close stays prompt and concurrent requests share one redial.
func (c *Client) acquireConn() (*clientConn, error) {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil, ErrClientClosed
	}
	if c.cc != nil && c.cc.healthy() {
		cc := c.cc
		c.stateMu.Unlock()
		return cc, nil
	}
	c.stateMu.Unlock()
	if c.network == "" {
		return nil, ErrConnBroken
	}

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Recheck under dialMu: a concurrent request may have redialed while
	// we waited for the lock.
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil, ErrClientClosed
	}
	if c.cc != nil && c.cc.healthy() {
		cc := c.cc
		c.stateMu.Unlock()
		return cc, nil
	}
	old := c.cc
	c.cc = nil
	c.stateMu.Unlock()
	if old != nil {
		old.fail(ErrConnBroken)
	}

	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	if m := c.met.Load(); m != nil {
		m.redials.Inc()
	}
	cc := newClientConn(conn, c.countBroken)
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		cc.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	c.cc = cc
	c.stateMu.Unlock()
	return cc, nil
}

// backoff returns the pre-retry delay for the given attempt: exponential
// from BackoffBase, capped at BackoffMax, with ±50% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 0; i < attempt && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// roundTrip sends one request and reads its reply, redialing and
// retrying on connection failures up to MaxAttempts. Concurrent round
// trips pipeline over the shared connection.
func (c *Client) roundTrip(req *Request) (*Reply, error) {
	req.App = c.app
	frame := EncodeRequest(req)
	if len(frame) > MaxMessageSize {
		// Reject before any bytes hit the wire (the server would cut the
		// connection on the oversize prefix); the connection stays clean.
		return nil, fmt.Errorf("%w: request is %d bytes", ErrMessageTooLarge, len(frame))
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if m := c.met.Load(); m != nil {
				m.retries.Inc()
			}
			time.Sleep(c.backoff(attempt - 1))
		}
		cc, err := c.acquireConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) || errors.Is(err, ErrConnBroken) {
				// Closed, or poisoned with no redial path: retrying
				// cannot help.
				return nil, err
			}
			lastErr = err // dial failure: back off and retry
			continue
		}
		reply, err := cc.send(frame, c.cfg.RequestTimeout)
		if err == nil {
			if reply.Type == MsgReplyError {
				// The server answered; its error is final and the
				// connection stays healthy.
				return nil, fmt.Errorf("service: %s", reply.Error)
			}
			return reply, nil
		}
		if !errors.Is(err, ErrConnBroken) {
			return nil, err
		}
		lastErr = err
		if c.network == "" {
			return nil, err // cannot redial a wrapped connection
		}
	}
	return nil, lastErr
}

// Register registers a function and its key types with the service
// (§4.3: "registers a handle with the cache service ... and initializes
// the application-specific key index. It also resets the input
// similarity threshold").
func (c *Client) Register(function string, keyTypes ...KeyTypeDef) error {
	if len(keyTypes) == 0 {
		return errors.New("service: at least one key type required")
	}
	_, err := c.roundTrip(&Request{
		Type:     MsgRegister,
		Function: function,
		KeyTypes: keyTypes,
	})
	return err
}

// LookupResult is the client-side view of a lookup outcome.
type LookupResult struct {
	Hit       bool
	Dropout   bool
	Value     []byte
	Distance  float64
	Threshold float64
	// MissedAt is the server clock time of a miss; pass it back to Put
	// so the service can compute the computation overhead.
	MissedAt time.Time
	// Trace is the trace ID this lookup ran under end to end: the one
	// passed to LookupTraced, or one the client minted. The server-side
	// spans for the request are retained under the same ID.
	Trace telemetry.TraceID
}

// Lookup queries the cache. Every client lookup carries a trace ID
// (minted here when the caller did not supply one via LookupTraced), so
// the server's /trace/spans and /debug/explain endpoints observe traffic
// from uninstrumented clients too; the ID costs eight bytes on the wire.
func (c *Client) Lookup(function, keyType string, key vec.Vector) (LookupResult, error) {
	return c.LookupTraced(function, keyType, key, 0)
}

// LookupTraced queries the cache under an explicit trace ID, correlating
// the server-side spans with the caller's own. trace == 0 mints a fresh
// ID. When the client is instrumented, the round trip is recorded as a
// client-layer span (stage "ipc") under the same ID.
func (c *Client) LookupTraced(function, keyType string, key vec.Vector, trace telemetry.TraceID) (LookupResult, error) {
	if trace == 0 {
		trace = telemetry.NewTraceID()
	}
	m := c.met.Load()
	var start time.Time
	if m != nil && m.spans != nil {
		start = time.Now()
	}
	reply, err := c.roundTrip(&Request{
		Type:     MsgLookup,
		Function: function,
		KeyType:  keyType,
		Key:      key,
		Trace:    uint64(trace),
	})
	if m != nil && m.spans != nil {
		recordClientSpan(m.spans, start, trace, function, keyType, reply, err)
	}
	if err != nil {
		return LookupResult{}, err
	}
	res := LookupResult{
		Hit:       reply.Hit,
		Dropout:   reply.Dropout,
		Value:     reply.Value,
		Distance:  reply.Distance,
		Threshold: reply.Threshold,
		MissedAt:  time.Unix(0, reply.MissedAt),
		Trace:     telemetry.TraceID(reply.Trace),
	}
	if res.Trace == 0 {
		// Older server: no echo on the wire; the request still carried
		// our ID, so report the one we sent.
		res.Trace = trace
	}
	return res, nil
}

// recordClientSpan records the application-side view of one traced round
// trip: the ipc stage spans request encode to reply decode, so the gap
// between it and the server's serve-stage duration is wire + framing
// time.
func recordClientSpan(spans *telemetry.SpanRecorder, start time.Time, trace telemetry.TraceID,
	function, keyType string, reply *Reply, err error) {
	dur := time.Since(start)
	sp := telemetry.Span{
		Trace:       trace,
		Start:       start.UnixNano(),
		DurationNs:  int64(dur),
		Layer:       "client",
		Function:    function,
		KeyType:     keyType,
		Distance:    -1,
		DropoutRoll: -1,
		Probes:      -1,
		Stages: []telemetry.SpanStage{{
			Name: telemetry.StageIPC, DurationNs: int64(dur),
		}},
	}
	switch {
	case err != nil:
		sp.Outcome = telemetry.OutcomeError
		sp.Err = err.Error()
	case reply.Type == MsgReplyPut:
		sp.Outcome = telemetry.OutcomePut
	case reply.Dropout:
		sp.Outcome = telemetry.OutcomeDropout
	case reply.Hit:
		sp.Outcome = telemetry.OutcomeHit
		sp.Distance = reply.Distance
		sp.Threshold = reply.Threshold
	default:
		sp.Outcome = telemetry.OutcomeMiss
		sp.Distance = reply.Distance
		sp.Threshold = reply.Threshold
	}
	spans.Record(sp)
}

// PutOptions carries the optional fields of a put.
type PutOptions struct {
	// Cost is the measured computation overhead.
	Cost time.Duration
	// Size overrides the entry-size estimate.
	Size int
	// TTL overrides the service's default validity period.
	TTL time.Duration
	// Trace correlates the put with the lookup that missed (pass the
	// LookupResult's Trace). 0 leaves the put untraced.
	Trace telemetry.TraceID
}

// Put inserts a computed result under one or more keys.
func (c *Client) Put(function string, keys map[string]vec.Vector, value []byte, opts PutOptions) (uint64, error) {
	m := c.met.Load()
	var start time.Time
	if m != nil && m.spans != nil && opts.Trace != 0 {
		start = time.Now()
	}
	reply, err := c.roundTrip(&Request{
		Type:     MsgPut,
		Function: function,
		Keys:     keys,
		Value:    value,
		Cost:     int64(opts.Cost),
		Size:     int64(opts.Size),
		TTL:      int64(opts.TTL),
		Trace:    uint64(opts.Trace),
	})
	if m != nil && m.spans != nil && opts.Trace != 0 {
		recordClientSpan(m.spans, start, opts.Trace, function, "", reply, err)
	}
	if err != nil {
		return 0, err
	}
	return reply.ID, nil
}

// PeerInfo exchanges mesh handshakes with the service: it sends this
// node's descriptor and returns the peer's. An old-style server answers
// the unknown message type with an in-band error (the connection stays
// healthy), which surfaces here as a normal error — callers treat it as
// "legacy peer, no mesh protocol".
func (c *Client) PeerInfo(info PeerInfo) (PeerInfo, error) {
	reply, err := c.roundTrip(&Request{Type: MsgPeerInfo, Value: EncodePeerInfo(&info)})
	if err != nil {
		return PeerInfo{}, err
	}
	theirs, err := DecodePeerInfo(reply.Value)
	if err != nil {
		return PeerInfo{}, fmt.Errorf("service: peer info reply: %w", err)
	}
	return *theirs, nil
}

// Stats fetches the service's cache counters.
func (c *Client) Stats() (StatsPayload, error) {
	reply, err := c.roundTrip(&Request{Type: MsgStats})
	if err != nil {
		return StatsPayload{}, err
	}
	return reply.Stats, nil
}

// MultiLookupResult is the client-side outcome of one batch sub-lookup.
// Err is this sub-operation's failure; a failed sub never fails its
// siblings.
type MultiLookupResult struct {
	LookupResult
	Err error
}

// MultiLookup issues a batch of lookups in one wire frame. The server
// fans the sub-lookups across its worker group and replies with one
// frame of index-aligned results. Sub-ops without a Trace get one
// minted here, so every sub-lookup is individually resolvable against
// the server's span endpoints.
//
// A batch against an old-style server fails whole with the server's
// "unknown request type" error; the connection stays usable.
func (c *Client) MultiLookup(subs []LookupSub) ([]MultiLookupResult, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	if len(subs) > MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(subs), MaxBatch)
	}
	sent := make([]LookupSub, len(subs))
	copy(sent, subs)
	for i := range sent {
		if sent[i].Trace == 0 {
			sent[i].Trace = uint64(telemetry.NewTraceID())
		}
	}
	reply, err := c.roundTrip(&Request{Type: MsgMultiLookup, Value: EncodeLookupSubs(sent)})
	if err != nil {
		return nil, err
	}
	srs, err := DecodeLookupSubReplies(reply.Value)
	if err != nil {
		return nil, fmt.Errorf("service: batch reply: %w", err)
	}
	if len(srs) != len(sent) {
		return nil, fmt.Errorf("service: batch reply has %d results for %d sub-ops", len(srs), len(sent))
	}
	out := make([]MultiLookupResult, len(srs))
	for i, sr := range srs {
		if sr.Error != "" {
			out[i] = MultiLookupResult{Err: fmt.Errorf("service: %s", sr.Error)}
			continue
		}
		res := LookupResult{
			Hit:       sr.Hit,
			Dropout:   sr.Dropout,
			Value:     sr.Value,
			Distance:  sr.Distance,
			Threshold: sr.Threshold,
			MissedAt:  time.Unix(0, sr.MissedAt),
			Trace:     telemetry.TraceID(sr.Trace),
		}
		if res.Trace == 0 {
			res.Trace = telemetry.TraceID(sent[i].Trace)
		}
		out[i] = MultiLookupResult{LookupResult: res}
	}
	return out, nil
}

// MultiPutResult is the client-side outcome of one batch sub-put.
type MultiPutResult struct {
	ID  uint64
	Err error
}

// MultiPut inserts a batch of results in one wire frame, returning
// index-aligned per-sub IDs and errors. The envelope carries the
// client's app name for all sub-ops.
func (c *Client) MultiPut(subs []PutSub) ([]MultiPutResult, error) {
	if len(subs) == 0 {
		return nil, nil
	}
	if len(subs) > MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(subs), MaxBatch)
	}
	reply, err := c.roundTrip(&Request{Type: MsgMultiPut, Value: EncodePutSubs(subs)})
	if err != nil {
		return nil, err
	}
	srs, err := DecodePutSubReplies(reply.Value)
	if err != nil {
		return nil, fmt.Errorf("service: batch reply: %w", err)
	}
	if len(srs) != len(subs) {
		return nil, fmt.Errorf("service: batch reply has %d results for %d sub-ops", len(srs), len(subs))
	}
	out := make([]MultiPutResult, len(srs))
	for i, sr := range srs {
		if sr.Error != "" {
			out[i] = MultiPutResult{Err: fmt.Errorf("service: %s", sr.Error)}
			continue
		}
		out[i] = MultiPutResult{ID: sr.ID}
	}
	return out, nil
}
