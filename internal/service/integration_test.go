package service

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/synth"
	"repro/internal/vec"
)

// TestVisionPipelineOverIPC runs the full stack end to end: synthetic
// camera frames → downsample feature keys → Potluck service over a Unix
// socket → cross-application reuse, with the threshold tuner running
// live on the server. This is the paper's deployment shape (Figure 4)
// minus only Android itself.
func TestVisionPipelineOverIPC(t *testing.T) {
	srv, sock := startServer(t, core.Config{
		Seed:  1,
		Tuner: core.TunerConfig{WarmupZ: 10},
	})

	ext, err := feature.ByName("downsamp")
	if err != nil {
		t.Fatal(err)
	}
	ds := synth.NewCIFARLike(5)

	newApp := func(name string) *Client {
		cl, err := Dial("unix", sock, name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		if err := cl.Register("objectRecognition", KeyTypeDef{Name: "downsamp", Index: "kdtree", Dim: feature.DownsampleDims}); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	lens := newApp("lens")
	nav := newApp("nav")

	// The "expensive" recognizer: ground truth after a token delay.
	recognize := func(class int) []byte {
		return []byte(fmt.Sprintf("class-%d", class))
	}

	correctHits, wrongHits := 0, 0
	process := func(cl *Client, class, variant int) (hit bool) {
		img := ds.Sample(class, variant).Image
		key := ext.Extract(img).Key
		res, err := cl.Lookup("objectRecognition", "downsamp", key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit {
			// Approximate reuse is allowed to be occasionally wrong —
			// that is the paper's accuracy/performance tradeoff — but
			// mostly right.
			if string(res.Value) == fmt.Sprintf("class-%d", class) {
				correctHits++
			} else {
				wrongHits++
			}
			return true
		}
		if _, err := cl.Put("objectRecognition",
			map[string]vec.Vector{"downsamp": key}, recognize(class),
			PutOptions{Cost: 150 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		return false
	}

	// Lens warms the cache over bursts of similar frames; the tuner
	// activates after WarmupZ puts.
	for i := 0; i < 40; i++ {
		process(lens, (i/4)%10, 100+i)
	}
	// Nav then sees the same environments moments later.
	navHits := 0
	for i := 0; i < 20; i++ {
		if process(nav, (i/2)%10, 500+i) {
			navHits++
		}
	}
	if navHits == 0 {
		st, _ := lens.Stats()
		t.Fatalf("no cross-app hits over IPC; stats %+v, cache %d entries",
			st, srv.Cache().Len())
	}
	if total := correctHits + wrongHits; total > 0 {
		acc := float64(correctHits) / float64(total)
		if acc < 0.7 {
			t.Errorf("hit accuracy %.2f (%d/%d) below 0.7", acc, correctHits, total)
		}
	}
	st, err := lens.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SavedComputeN == 0 {
		t.Error("no computation savings recorded")
	}
	t.Logf("nav cross-app hits: %d/20, hit accuracy %d/%d, saved %s",
		navHits, correctHits, correctHits+wrongHits, time.Duration(st.SavedComputeN))
}
