package service

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// --- mixed-version wire compatibility ---
//
// oldDecodeRequest/oldDecodeReply replicate the decoders as they were
// before the trailing trace-ID field existed: they stop after the last
// pre-trace field and (as the decoders always have) ignore any leftover
// bytes. Parsing new-encoder frames with them proves an old peer reads a
// traced frame cleanly; DecodeRequest/DecodeReply on truncated frames
// prove the reverse direction.

func oldDecodeRequest(buf []byte) (*Request, error) {
	d := decoder{buf: buf}
	r := &Request{Type: MsgType(d.u8())}
	r.App = d.str()
	r.Function = d.str()
	r.KeyType = d.str()
	r.Key = d.vector()
	if n := int(d.u32()); n > 0 {
		r.Keys = make(map[string]vec.Vector, n)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			r.Keys[name] = d.vector()
		}
	}
	if n := int(d.u32()); n > 0 {
		r.KeyTypes = make([]KeyTypeDef, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			r.KeyTypes = append(r.KeyTypes, KeyTypeDef{
				Name: d.str(), Metric: d.str(), Index: d.str(), Dim: d.u32(),
			})
		}
	}
	r.Value = d.bytes()
	r.Cost = d.i64()
	r.Size = d.i64()
	r.TTL = d.i64()
	// Old decoder stops here: no trace read, leftover bytes ignored.
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

func oldDecodeReply(buf []byte) (*Reply, error) {
	d := decoder{buf: buf}
	r := &Reply{Type: MsgType(d.u8())}
	r.Error = d.str()
	r.Hit = d.bool()
	r.Dropout = d.bool()
	r.Value = d.bytes()
	r.Distance = d.f64()
	r.Threshold = d.f64()
	r.MissedAt = d.i64()
	r.ID = d.u64()
	for _, p := range []*int64{&r.Stats.Hits, &r.Stats.Misses, &r.Stats.Dropouts,
		&r.Stats.Puts, &r.Stats.Evictions, &r.Stats.Expirations,
		&r.Stats.Entries, &r.Stats.Bytes, &r.Stats.SavedComputeN} {
		*p = d.i64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// An old peer must parse a new (traced) request frame identically,
// modulo the trace it does not know about.
func TestOldPeerDecodesTracedRequest(t *testing.T) {
	req := &Request{
		Type: MsgLookup, App: "lens", Function: "recog", KeyType: "feat",
		Key: vec.Vector{1, 2, 3}, Trace: uint64(telemetry.NewTraceID()),
	}
	frame := EncodeRequest(req)
	old, err := oldDecodeRequest(frame)
	if err != nil {
		t.Fatalf("old decoder rejected traced frame: %v", err)
	}
	if old.App != req.App || old.Function != req.Function || old.KeyType != req.KeyType ||
		len(old.Key) != 3 || old.Key[2] != 3 {
		t.Fatalf("old decoder mangled traced frame: %+v", old)
	}
	if old.Trace != 0 {
		t.Fatalf("old decoder should not see the trace: %d", old.Trace)
	}
	// And the new decoder reads an old-encoder frame (no trailing trace)
	// as untraced.
	neu, err := DecodeRequest(frame[:len(frame)-8])
	if err != nil || neu.Trace != 0 {
		t.Fatalf("new decoder on old frame: trace=%d err=%v", neu.Trace, err)
	}
}

func TestOldPeerDecodesTracedReply(t *testing.T) {
	reply := &Reply{
		Type: MsgReplyLookup, Hit: true, Value: []byte("v"),
		Distance: 0.5, Threshold: 1.5, MissedAt: 7, ID: 9,
		Stats: StatsPayload{Hits: 1, Bytes: 2},
		Trace: uint64(telemetry.NewTraceID()),
	}
	frame := EncodeReply(reply)
	old, err := oldDecodeReply(frame)
	if err != nil {
		t.Fatalf("old decoder rejected traced reply: %v", err)
	}
	if !old.Hit || old.Distance != 0.5 || old.ID != 9 || old.Stats.Bytes != 2 {
		t.Fatalf("old decoder mangled traced reply: %+v", old)
	}
	if old.Trace != 0 {
		t.Fatalf("old decoder should not see the trace: %d", old.Trace)
	}
	neu, err := DecodeReply(frame[:len(frame)-8])
	if err != nil || neu.Trace != 0 || !neu.Hit {
		t.Fatalf("new decoder on old reply: %+v err=%v", neu, err)
	}
	// Sanity: the trailing 8 bytes really are the big-endian trace.
	if got := binary.BigEndian.Uint64(frame[len(frame)-8:]); got != reply.Trace {
		t.Fatalf("trailing bytes = %x, want trace %x", got, reply.Trace)
	}
}

// --- trace propagation over the wire ---

// startTracedServer boots a server whose cache and request dispatch both
// record into a dedicated hub telemetry.
func startTracedServer(t *testing.T) (*Server, *telemetry.Telemetry, string) {
	t.Helper()
	hubTel := telemetry.New()
	cfg := testConfig()
	cfg.Telemetry = hubTel
	srv, sock := startServer(t, cfg)
	srv.Instrument(hubTel)
	return srv, hubTel, sock
}

// A client lookup must carry its trace to the server, which records
// server- and core-layer spans under it and echoes it back.
func TestTracePropagatesOverIPC(t *testing.T) {
	_, hubTel, sock := startTracedServer(t)
	cl, err := Dial("unix", sock, "lens")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("recog", KeyTypeDef{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": {1, 2}}, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	id := telemetry.NewTraceID()
	res, err := cl.LookupTraced("recog", "feat", vec.Vector{1, 2}, id)
	if err != nil || !res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	if res.Trace != id {
		t.Fatalf("echoed trace = %s, want %s", res.Trace, id)
	}
	spans := hubTel.Spans.Find(id)
	layers := map[string]bool{}
	for _, sp := range spans {
		layers[sp.Layer] = true
	}
	if !layers["server"] || !layers["core"] {
		t.Fatalf("hub spans missing layers: %+v", spans)
	}
	// A plain Lookup mints its own ID, so uninstrumented clients still
	// populate the hub's span surface.
	res2, err := cl.Lookup("recog", "feat", vec.Vector{1, 2})
	if err != nil || res2.Trace == 0 {
		t.Fatalf("minted trace missing: %+v %v", res2, err)
	}
	if len(hubTel.Spans.Find(res2.Trace)) == 0 {
		t.Fatalf("minted trace %s not retained on the hub", res2.Trace)
	}
}

// The acceptance scenario: one traced lookup through feature extraction,
// the local tier, and the remote hub produces spans covering key-gen,
// index probe, threshold decision, and the IPC hop — all under ONE
// trace ID, split across the app's and the hub's recorders.
func TestEndToEndTraceAcrossTiers(t *testing.T) {
	_, hubTel, sock := startTracedServer(t)

	appTel := telemetry.New()
	local := core.New(core.Config{
		Telemetry:      appTel,
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	if err := local.RegisterFunction("recog", core.KeyTypeSpec{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial("unix", sock, "glass")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Instrument(appTel)
	if err := cl.Register("recog", KeyTypeDef{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
	key := vec.Vector{1, 2}
	// Seed the hub only: the local tier must miss and the remote hit.
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": key}, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	// Key generation is the first hop of the trace.
	feature.InstrumentTracing(appTel)
	trace := telemetry.NewTraceID()
	img := imaging.NewRGB(8, 8)
	for i := range img.Pix {
		img.Pix[i] = float64(i%7) / 7
	}
	if r := feature.ExtractTraced(feature.ColorHist{}, img, trace); len(r.Key) == 0 {
		t.Fatal("extraction produced no key")
	}

	tiered := &Tiered{Local: local, Remote: cl}
	res, err := tiered.LookupTraced("recog", "feat", key, trace)
	if err != nil || !res.Hit || !res.RemoteHit {
		t.Fatalf("tiered lookup: %+v %v", res, err)
	}
	if res.Trace != trace {
		t.Fatalf("tiered trace = %s, want %s", res.Trace, trace)
	}

	// App side: keygen (feature), probe+decide (local core miss), ipc
	// (client round trip), all under the one trace.
	stages := map[string]bool{}
	layers := map[string]bool{}
	for _, sp := range appTel.Spans.Find(trace) {
		layers[sp.Layer] = true
		for _, st := range sp.Stages {
			stages[st.Name] = true
		}
	}
	for _, want := range []string{telemetry.StageKeyGen, telemetry.StageProbe, telemetry.StageDecide, telemetry.StageIPC} {
		if !stages[want] {
			t.Errorf("app-side trace missing stage %q (have %v)", want, stages)
		}
	}
	for _, want := range []string{"feature", "core", "client"} {
		if !layers[want] {
			t.Errorf("app-side trace missing layer %q (have %v)", want, layers)
		}
	}

	// Hub side: the same trace ID covers the server dispatch and the hub
	// cache's hit decision.
	hubLayers := map[string]bool{}
	var hubHit bool
	for _, sp := range hubTel.Spans.Find(trace) {
		hubLayers[sp.Layer] = true
		if sp.Layer == "core" && sp.Outcome == telemetry.OutcomeHit {
			hubHit = true
			if sp.Distance != 0 {
				t.Errorf("hub hit distance = %v, want exact 0", sp.Distance)
			}
		}
	}
	if !hubLayers["server"] || !hubHit {
		t.Errorf("hub-side trace incomplete: layers=%v hit=%v", hubLayers, hubHit)
	}

	// The adoption put rides the same trace on the app side.
	var adopted bool
	for _, sp := range appTel.Spans.Find(trace) {
		if sp.Layer == "core" && sp.Outcome == telemetry.OutcomePut {
			adopted = true
		}
	}
	if !adopted {
		t.Error("adoption put span missing from the app-side trace")
	}
}

// Put echo: a traced put comes back with the same ID even through the
// error path.
func TestPutTraceEcho(t *testing.T) {
	_, hubTel, sock := startTracedServer(t)
	cl, err := Dial("unix", sock, "lens")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("recog", KeyTypeDef{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
	id := telemetry.NewTraceID()
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": {3}}, []byte("v"), PutOptions{Trace: id}); err != nil {
		t.Fatal(err)
	}
	spans := hubTel.Spans.Find(id)
	var put bool
	for _, sp := range spans {
		if sp.Outcome == telemetry.OutcomePut {
			put = true
		}
	}
	if !put {
		t.Fatalf("traced put not retained on hub: %+v", spans)
	}
	// Error path: unknown function. The error span must carry the trace.
	errID := telemetry.NewTraceID()
	_, err = cl.Put("nope", map[string]vec.Vector{"feat": {3}}, []byte("v"), PutOptions{Trace: errID})
	if err == nil {
		t.Fatal("unknown function accepted")
	}
	if !errors.Is(err, ErrConnBroken) {
		// The server replied (vs a transport failure): its spans must
		// include the traced error.
		found := false
		for _, sp := range hubTel.Spans.Find(errID) {
			if sp.Outcome == telemetry.OutcomeError {
				found = true
			}
		}
		if !found {
			t.Fatalf("traced put error not retained on hub")
		}
	}
}

// NaN-ish guard: replyDistance must pass lookup distances through
// unchanged, including the -1 "no neighbour" sentinel.
func TestReplyOutcomeMapping(t *testing.T) {
	cases := []struct {
		reply Reply
		want  string
	}{
		{Reply{Type: MsgReplyError}, telemetry.OutcomeError},
		{Reply{Type: MsgReplyPut}, telemetry.OutcomePut},
		{Reply{Type: MsgReplyStats}, "ok"},
		{Reply{Type: MsgReplyLookup, Dropout: true}, telemetry.OutcomeDropout},
		{Reply{Type: MsgReplyLookup, Hit: true}, telemetry.OutcomeHit},
		{Reply{Type: MsgReplyLookup}, telemetry.OutcomeMiss},
	}
	for _, c := range cases {
		if got := replyOutcome(&c.reply); got != c.want {
			t.Errorf("replyOutcome(%+v) = %q, want %q", c.reply, got, c.want)
		}
	}
	if d := replyDistance(&Reply{Type: MsgReplyLookup, Distance: -1}); d != -1 {
		t.Errorf("lookup distance sentinel mangled: %v", d)
	}
	if d := replyDistance(&Reply{Type: MsgReplyStats, Distance: math.Pi}); d != -1 {
		t.Errorf("non-lookup distance should be -1, got %v", d)
	}
}
