package service

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker state names, as reported by Breaker.State.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker is a minimal circuit breaker guarding calls to a remote peer.
// It is closed (calls flow) until Threshold consecutive failures, then
// open (calls are refused outright) for Cooldown, then half-open: one
// probe call is admitted, and its outcome either closes the breaker or
// re-opens it for another Cooldown. Refusing calls while open is the
// point — a dead peer costs its timeout on every request otherwise.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// jitter yields a value in [0, 1); each trip extends the cooldown by
	// up to 50% of itself so a fleet of breakers guarding the same dead
	// peer spreads its half-open probes instead of thundering back in
	// lockstep on the same tick.
	jitter func() float64

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	probing   bool
	// notify, when set, receives state transitions; lastState is the
	// state it was last told about, so passive transitions (open →
	// half-open by cooldown expiry) are reported at the next call that
	// observes them.
	notify    func(from, to string)
	lastState string
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 3
// consecutive failures, cooldown <= 0 to 5s, and a nil now to time.Now
// (injectable for tests).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now,
		jitter: rand.Float64, lastState: BreakerClosed}
}

// SetJitterSource replaces the half-open jitter source (values in
// [0, 1); the cooldown stretches by up to half of itself). Tests inject
// a deterministic source; production keeps the default math/rand. Call
// before the breaker is shared.
func (b *Breaker) SetJitterSource(fn func() float64) {
	b.mu.Lock()
	b.jitter = fn
	b.mu.Unlock()
}

// SetNotify registers fn to receive state transitions as (from, to)
// state names. fn is invoked after the breaker's lock is released — it
// may safely call back into the breaker — so under concurrency two
// transitions can occasionally be delivered out of order. Register
// before the breaker is shared.
func (b *Breaker) SetNotify(fn func(from, to string)) {
	b.mu.Lock()
	b.notify = fn
	b.lastState = b.stateLocked()
	b.mu.Unlock()
}

// stateLocked derives the current state name; callers hold b.mu.
func (b *Breaker) stateLocked() string {
	switch {
	case b.failures < b.threshold:
		return BreakerClosed
	case b.now().Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}

// observeLocked compares the derived state against the last state
// reported to notify and returns the notification to run after b.mu is
// released (nil when nothing changed).
func (b *Breaker) observeLocked() func() {
	cur := b.stateLocked()
	if b.notify == nil || cur == b.lastState {
		b.lastState = cur
		return nil
	}
	prev := b.lastState
	b.lastState = cur
	fn := b.notify
	return func() { fn(prev, cur) }
}

// Allow reports whether a call may proceed. Every admitted call must be
// followed by a Report of its outcome; in the half-open state only one
// probe is admitted at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var allowed bool
	switch {
	case b.failures < b.threshold:
		allowed = true
	case b.now().Before(b.openUntil):
		allowed = false
	case b.probing:
		allowed = false
	default:
		b.probing = true
		allowed = true
	}
	note := b.observeLocked()
	b.mu.Unlock()
	if note != nil {
		note()
	}
	return allowed
}

// Report records the outcome of an admitted call.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	b.probing = false
	if err == nil {
		b.failures = 0
	} else {
		b.failures++
		if b.failures >= b.threshold {
			// Jittered cooldown: [cooldown, 1.5*cooldown). N breakers that
			// tripped on the same dead peer at the same instant re-admit
			// their probes at different ticks.
			d := b.cooldown + time.Duration(b.jitter()*float64(b.cooldown)/2)
			b.openUntil = b.now().Add(d)
		}
	}
	note := b.observeLocked()
	b.mu.Unlock()
	if note != nil {
		note()
	}
}

// State names the breaker's current state for diagnostics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}
