package service

import (
	"sync"
	"time"
)

// Breaker state names, as reported by Breaker.State.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker is a minimal circuit breaker guarding calls to a remote peer.
// It is closed (calls flow) until Threshold consecutive failures, then
// open (calls are refused outright) for Cooldown, then half-open: one
// probe call is admitted, and its outcome either closes the breaker or
// re-opens it for another Cooldown. Refusing calls while open is the
// point — a dead peer costs its timeout on every request otherwise.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	probing   bool
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 3
// consecutive failures, cooldown <= 0 to 5s, and a nil now to time.Now
// (injectable for tests).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed. Every admitted call must be
// followed by a Report of its outcome; in the half-open state only one
// probe is admitted at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Report records the outcome of an admitted call.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// State names the breaker's current state for diagnostics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.failures < b.threshold:
		return BreakerClosed
	case b.now().Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}
