package service

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// Peer-handshake wire hardening: the PeerInfo payload decoder against
// hostile bytes, and the MsgPeerInfo envelope against peers from before
// the mesh existed (both directions of the mixed-version matrix).

// FuzzDecodePeerInfo hardens the handshake payload decoder: never
// panic, and anything accepted must survive an encode/decode round
// trip with identical fields. The decoder is trailing-tolerant, so the
// comparison is structural, not byte-for-byte.
func FuzzDecodePeerInfo(f *testing.F) {
	f.Add(EncodePeerInfo(&PeerInfo{Version: MeshProtocolVersion, NodeID: "node-a", Replicas: 2}))
	f.Add(EncodePeerInfo(&PeerInfo{}))
	f.Add(EncodePeerInfo(&PeerInfo{Version: 7, NodeID: strings.Repeat("n", 300), Replicas: 99}))
	// A future encoder appends fields; today's decoder must ignore them.
	f.Add(append(EncodePeerInfo(&PeerInfo{Version: 2, NodeID: "x", Replicas: 3}), 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1}) // version only, truncated before NodeID
	// Hostile NodeID length with almost nothing behind it.
	f.Add(hostilePeerInfoFrame(0xFFFFFFFF))
	f.Add(hostilePeerInfoFrame(0x7FFFFFFF))
	f.Add(hostilePeerInfoFrame(0x80000000))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePeerInfo(data)
		if err != nil {
			return
		}
		p2, err := DecodePeerInfo(EncodePeerInfo(p))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *p != *p2 {
			t.Fatalf("round trip changed payload: %+v vs %+v", p, p2)
		}
	})
}

// hostilePeerInfoFrame builds a handshake payload whose NodeID length
// field is the given value with a single byte behind it.
func hostilePeerInfoFrame(n uint32) []byte {
	buf := binary.BigEndian.AppendUint32(nil, MeshProtocolVersion)
	buf = binary.BigEndian.AppendUint32(buf, n)
	return append(buf, 'x')
}

// A mesh client handshaking with a pre-mesh server must get the
// server's clean in-band error — the signature the cluster layer reads
// as "legacy peer" — and the SAME connection must keep serving the
// messages the old server does understand.
func TestPeerInfoAgainstOldServer(t *testing.T) {
	cconn, sconn := net.Pipe()
	go oldStyleServe(sconn)
	cl := NewClientConn(cconn, PeerAppPrefix+"node-a")
	cl.cfg.RequestTimeout = 2 * time.Second
	defer cl.Close()

	_, err := cl.PeerInfo(PeerInfo{Version: MeshProtocolVersion, NodeID: "node-a", Replicas: 2})
	if err == nil {
		t.Fatal("handshake against pre-mesh server succeeded")
	}
	if errors.Is(err, ErrConnBroken) {
		t.Fatalf("handshake against pre-mesh server broke the connection: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown request type") {
		t.Fatalf("handshake error = %v, want the server's unknown-type reply", err)
	}
	// The legacy peer still serves plain traffic on the same connection.
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("connection unusable after rejected handshake: %v", err)
	}
	if st.Hits != 1 {
		t.Fatalf("stats reply mangled after rejected handshake: %+v", st)
	}
}

// The other direction of the matrix: a pre-mesh decoder must parse
// both handshake envelopes cleanly. The request rides its Value field
// as opaque bytes and the reply likewise, so an old replica relaying
// or logging these frames never tears a connection over them.
func TestOldDecoderReadsPeerInfoEnvelopes(t *testing.T) {
	info := &PeerInfo{Version: MeshProtocolVersion, NodeID: "node-a", Replicas: 2}
	req := &Request{Type: MsgPeerInfo, App: PeerAppPrefix + "node-a", Value: EncodePeerInfo(info)}
	old, err := oldDecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatalf("old decoder rejected a handshake request: %v", err)
	}
	if old.Type != MsgPeerInfo || old.App != req.App {
		t.Fatalf("old decoder mangled the envelope: %+v", old)
	}
	back, err := DecodePeerInfo(old.Value)
	if err != nil || *back != *info {
		t.Fatalf("payload did not survive the old decoder: %+v, %v", back, err)
	}

	reply := &Reply{Type: MsgReplyPeerInfo, Value: EncodePeerInfo(info)}
	oldReply, err := oldDecodeReply(EncodeReply(reply))
	if err != nil {
		t.Fatalf("old decoder rejected a handshake reply: %v", err)
	}
	if oldReply.Type != MsgReplyPeerInfo {
		t.Fatalf("old decoder mangled the reply type: %+v", oldReply)
	}
	if back, err := DecodePeerInfo(oldReply.Value); err != nil || *back != *info {
		t.Fatalf("reply payload did not survive the old decoder: %+v, %v", back, err)
	}
}

// A raw wire-level handshake against today's server: the reply carries
// the server's configured node identity and protocol generation, and a
// malformed payload gets an in-band error, not a torn connection.
func TestServerAnswersPeerInfo(t *testing.T) {
	_, sock := startServerCfg(t, testConfig(), ServerConfig{NodeID: "srv-1"})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	exchange := func(req *Request) *Reply {
		t.Helper()
		if err := WriteFrame(conn, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := DecodeReply(payload)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}

	r := exchange(&Request{Type: MsgPeerInfo, Value: EncodePeerInfo(&PeerInfo{Version: MeshProtocolVersion, NodeID: "node-a"})})
	if r.Type != MsgReplyPeerInfo {
		t.Fatalf("handshake reply = %+v", r)
	}
	theirs, err := DecodePeerInfo(r.Value)
	if err != nil {
		t.Fatal(err)
	}
	if theirs.NodeID != "srv-1" || theirs.Version != MeshProtocolVersion {
		t.Fatalf("server identity = %+v, want srv-1 at version %d", theirs, MeshProtocolVersion)
	}

	// Garbage payload: in-band error, connection survives.
	if r := exchange(&Request{Type: MsgPeerInfo, Value: []byte{1}}); r.Type != MsgReplyError {
		t.Fatalf("malformed handshake reply = %+v, want in-band error", r)
	}
	if r := exchange(&Request{Type: MsgStats}); r.Type != MsgReplyStats {
		t.Fatalf("connection dead after malformed handshake: %+v", r)
	}
}
