package service

import (
	"errors"
	"testing"
	"time"
)

// TestBreakerHalfOpenJitter pins the thundering-herd defence: N breakers
// that trip on the same dead peer at the same instant must spread their
// half-open probes across [cooldown, 1.5*cooldown) according to their
// jitter draw, instead of re-admitting them on the same tick.
func TestBreakerHalfOpenJitter(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	fail := errors.New("peer down")

	trip := func(j float64) *Breaker {
		b := NewBreaker(1, time.Second, clock)
		b.SetJitterSource(func() float64 { return j })
		b.Allow()
		b.Report(fail)
		return b
	}

	early := trip(0.0)  // re-admits at exactly cooldown
	mid := trip(0.5)    // cooldown + 250ms
	late := trip(0.999) // just under 1.5*cooldown

	for _, b := range []*Breaker{early, mid, late} {
		if b.State() != BreakerOpen {
			t.Fatalf("state after trip = %s, want open", b.State())
		}
	}

	// At the bare cooldown only the zero-jitter breaker probes.
	now = time.Unix(0, 0).Add(time.Second)
	if !early.Allow() {
		t.Error("zero-jitter breaker refused its probe at cooldown")
	}
	if mid.Allow() || late.Allow() {
		t.Error("jittered breakers probed on the same tick as the zero-jitter one")
	}

	// Halfway through the jitter window the mid draw joins, the late one
	// still waits.
	now = time.Unix(0, 0).Add(time.Second + 251*time.Millisecond)
	if !mid.Allow() {
		t.Error("mid-jitter breaker refused its probe after its jittered cooldown")
	}
	if late.Allow() {
		t.Error("late-jitter breaker probed before its jittered cooldown elapsed")
	}

	// The jitter is bounded: every breaker probes by 1.5*cooldown.
	now = time.Unix(0, 0).Add(1500 * time.Millisecond)
	if !late.Allow() {
		t.Error("late-jitter breaker refused its probe at the jitter bound")
	}
}

// TestBreakerJitterRearmsPerTrip checks that each re-trip draws fresh
// jitter: a failed probe's re-opened cooldown is jittered independently
// of the first trip's draw.
func TestBreakerJitterRearmsPerTrip(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, time.Second, func() time.Time { return now })
	draws := []float64{0.0, 0.8}
	b.SetJitterSource(func() float64 {
		d := draws[0]
		if len(draws) > 1 {
			draws = draws[1:]
		}
		return d
	})
	fail := errors.New("peer down")

	b.Allow()
	b.Report(fail) // trip 1: jitter 0.0 → re-admit at +1s
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("first probe refused at its un-jittered cooldown")
	}
	b.Report(fail) // probe fails: re-trip with jitter 0.8 → +1.4s

	now = now.Add(time.Second + 300*time.Millisecond)
	if b.Allow() {
		t.Fatal("second probe admitted before its re-drawn jitter elapsed")
	}
	now = now.Add(150 * time.Millisecond) // 1.45s > 1.4s
	if !b.Allow() {
		t.Fatal("second probe refused after its jittered cooldown")
	}
	b.Report(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}
