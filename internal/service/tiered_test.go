package service

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

func tieredFixture(t *testing.T) (*Tiered, *Server) {
	t.Helper()
	srv, sock := startServer(t, testConfig())
	if err := srv.Cache().RegisterFunction("f", core.KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	remote, err := Dial("unix", sock, "device-b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	local := core.New(testConfig())
	if err := local.RegisterFunction("f", core.KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	return &Tiered{Local: local, Remote: remote}, srv
}

func TestTieredLocalHit(t *testing.T) {
	tr, _ := tieredFixture(t)
	key := vec.Vector{1}
	if err := tr.Put("f", "k", key, []byte("v"), time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Lookup("f", "k", key)
	if err != nil || !res.Hit || res.RemoteHit {
		t.Fatalf("local hit: %+v, %v", res, err)
	}
}

func TestTieredRemoteHitAndAdoption(t *testing.T) {
	tr, srv := tieredFixture(t)
	key := vec.Vector{2}
	// Another device computed this result.
	if _, err := srv.Cache().Put("f", core.PutRequest{
		Keys:  map[string]vec.Vector{"k": key},
		Value: []byte("remote-v"),
		Cost:  time.Second,
		App:   "device-a",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Lookup("f", "k", key)
	if err != nil || !res.Hit || !res.RemoteHit || string(res.Value) != "remote-v" {
		t.Fatalf("remote hit: %+v, %v", res, err)
	}
	// The result was adopted: the next lookup is local.
	res, err = tr.Lookup("f", "k", key)
	if err != nil || !res.Hit || res.RemoteHit {
		t.Fatalf("adopted lookup: %+v, %v", res, err)
	}
}

func TestTieredMissEverywhere(t *testing.T) {
	tr, _ := tieredFixture(t)
	res, err := tr.Lookup("f", "k", vec.Vector{3})
	if err != nil || res.Hit {
		t.Fatalf("miss: %+v, %v", res, err)
	}
	if res.MissedAt.IsZero() {
		t.Error("MissedAt not set on miss")
	}
}

func TestTieredWriteThrough(t *testing.T) {
	tr, srv := tieredFixture(t)
	key := vec.Vector{4}
	if err := tr.Put("f", "k", key, []byte("w"), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Visible on the remote service (another device would now hit it).
	lr, err := srv.Cache().Lookup("f", "k", key)
	if err != nil || !lr.Hit {
		t.Fatalf("remote after write-through: %+v, %v", lr, err)
	}
}

func TestTieredLocalOnly(t *testing.T) {
	local := core.New(testConfig())
	if err := local.RegisterFunction("f", core.KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	tr := &Tiered{Local: local}
	key := vec.Vector{5}
	if err := tr.Put("f", "k", key, []byte("x"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Lookup("f", "k", key)
	if err != nil || !res.Hit {
		t.Fatalf("local-only: %+v, %v", res, err)
	}
}
