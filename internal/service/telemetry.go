package service

import (
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// opNames are the request kinds the server exports series for. They are
// pre-created at Instrument time so the admin endpoint's /metrics is
// fully shaped (histogram buckets included) from the first scrape, even
// before any request arrives.
var opNames = []string{"register", "lookup", "put", "stats", "multilookup", "multiput", "peerinfo", "unknown"}

func opName(t MsgType) string {
	switch t {
	case MsgRegister:
		return "register"
	case MsgLookup:
		return "lookup"
	case MsgPut:
		return "put"
	case MsgStats:
		return "stats"
	case MsgMultiLookup:
		return "multilookup"
	case MsgMultiPut:
		return "multiput"
	case MsgPeerInfo:
		return "peerinfo"
	default:
		return "unknown"
	}
}

// opSeries is one request kind's pre-resolved series: resolved once at
// Instrument time so the per-request cost is two atomic adds and a
// histogram observation, never a registry lookup.
type opSeries struct {
	ok   *telemetry.Counter
	errs *telemetry.Counter
	lat  *telemetry.Histogram
}

// serverMetrics holds the server's telemetry series.
type serverMetrics struct {
	ops            map[string]*opSeries
	decodeErrs     *telemetry.Counter
	rejectedConns  *telemetry.Counter
	droppedConns   *telemetry.Counter
	suppressedLogs *telemetry.Counter
	// spans is the hub's span recorder; traced requests (a non-zero
	// trace ID on the wire) record a server-layer span into it.
	spans *telemetry.SpanRecorder
}

// Instrument attaches the server to a telemetry hub: per-op request
// counters and latency histograms, connection gauges, and log-suppression
// counts. Call it before Serve; it is not safe to call concurrently
// with request handling.
func (s *Server) Instrument(tel *telemetry.Telemetry) {
	r := tel.Registry
	reqs := r.CounterVec("potluck_server_requests_total",
		"Requests served, by operation and result.", "op", "result")
	lat := r.HistogramVec("potluck_server_request_latency_seconds",
		"Request dispatch latency (cache work, excluding socket I/O).", "op")
	m := &serverMetrics{
		ops: make(map[string]*opSeries, len(opNames)),
		decodeErrs: r.Counter("potluck_server_decode_errors_total",
			"Request frames that failed to decode."),
		rejectedConns: r.Counter("potluck_server_rejected_conns_total",
			"Connections refused at the MaxConns cap."),
		droppedConns: r.Counter("potluck_server_dropped_conns_total",
			"Connections dropped mid-stream (timeouts, oversize frames, write failures)."),
		suppressedLogs: r.Counter("potluck_server_suppressed_logs_total",
			"Diagnostic log lines suppressed by the per-key rate limiter."),
		spans: tel.Spans,
	}
	for _, op := range opNames {
		m.ops[op] = &opSeries{
			ok:   reqs.With(op, "ok"),
			errs: reqs.With(op, "error"),
			lat:  lat.With(op),
		}
	}
	r.Gauge("potluck_server_open_conns", "Currently open application connections.").
		SetFunc(func() float64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return float64(n)
		})
	s.met = m
}

// AdminStats is the JSON document the daemon serves at the admin
// endpoint's /stats path; potluck-cli decodes the same struct.
type AdminStats struct {
	UptimeSeconds float64              `json:"uptimeSeconds"`
	Hits          int64                `json:"hits"`
	Misses        int64                `json:"misses"`
	Dropouts      int64                `json:"dropouts"`
	HitRate       float64              `json:"hitRate"`
	Puts          int64                `json:"puts"`
	RejectedPuts  int64                `json:"rejectedPuts"`
	Evictions     int64                `json:"evictions"`
	Expirations   int64                `json:"expirations"`
	Invalidations int64                `json:"invalidations"`
	Entries       int                  `json:"entries"`
	Bytes         int64                `json:"bytes"`
	SavedSeconds  float64              `json:"savedComputeSeconds"`
	Functions     []core.FunctionStats `json:"functions"`
}

// AdminStats snapshots the cache for the admin endpoint. started is the
// daemon's start time (zero omits the uptime).
func (s *Server) AdminStats(started time.Time) AdminStats {
	st := s.cache.Stats()
	out := AdminStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Dropouts:      st.Dropouts,
		HitRate:       st.HitRate(),
		Puts:          st.Puts,
		RejectedPuts:  st.RejectedPuts,
		Evictions:     st.Evictions,
		Expirations:   st.Expirations,
		Invalidations: st.Invalidations,
		Entries:       st.Entries,
		Bytes:         st.Bytes,
		SavedSeconds:  st.SavedCompute.Seconds(),
		Functions:     s.cache.FunctionStats(),
	}
	if !started.IsZero() {
		out.UptimeSeconds = time.Since(started).Seconds()
	}
	return out
}

// clientMetrics are the client's reconnect-path counters, shared by all
// clients instrumented against the same registry.
type clientMetrics struct {
	retries *telemetry.Counter
	redials *telemetry.Counter
	broken  *telemetry.Counter
	// spans is the application's span recorder; traced round trips record
	// a client-layer span into it.
	spans *telemetry.SpanRecorder
}

// Instrument attaches the client to a telemetry hub, counting request
// retries, redials, and poisoned connections. Safe to call at most once,
// before issuing requests.
func (c *Client) Instrument(tel *telemetry.Telemetry) {
	r := tel.Registry
	c.met.Store(&clientMetrics{
		retries: r.Counter("potluck_client_retries_total",
			"Requests re-attempted after a connection failure."),
		redials: r.Counter("potluck_client_redials_total",
			"Reconnects performed after a poisoned connection."),
		broken: r.Counter("potluck_client_broken_conns_total",
			"Connections poisoned by I/O or framing failures."),
		spans: tel.Spans,
	})
}

// Instrument attaches the tiered cache's remote-path health to a
// telemetry hub: breaker transitions are counted, traced, and the
// current state plus absorbed remote errors are exported as series.
func (t *Tiered) Instrument(tel *telemetry.Telemetry) {
	r := tel.Registry
	transitions := r.CounterVec("potluck_breaker_transitions_total",
		"Remote-tier circuit breaker transitions, by destination state.", "to")
	r.Counter("potluck_remote_errors_total",
		"Remote-tier failures absorbed (degraded lookups, skipped write-throughs).").
		SetFunc(t.remoteErrs.Load)
	r.Gauge("potluck_breaker_open",
		"1 while the remote-tier breaker refuses calls, else 0.").
		SetFunc(func() float64 {
			if t.BreakerState() == BreakerOpen {
				return 1
			}
			return 0
		})
	t.breaker().SetNotify(func(from, to string) {
		transitions.With(to).Inc()
		tel.RecordEvent(telemetry.Event{
			Kind:   telemetry.EventBreaker,
			Detail: from + "->" + to,
		})
	})
}
