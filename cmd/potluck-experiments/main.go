// Command potluck-experiments regenerates the tables and figures of the
// paper's evaluation (§5). With no arguments it runs everything in paper
// order; pass artifact ids (fig2, table1, fig6, fig7, fig8, table2, ipc,
// fig9, fig10a, fig10b, fig10c, mnist16x) to run a subset, or -list to
// enumerate them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
