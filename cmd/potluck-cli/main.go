// Command potluck-cli is a hand-driven client for a running potluckd,
// exposing the register()/lookup()/put() API of §4.3 from the shell.
//
// Usage:
//
//	potluck-cli [-network unix] [-addr /tmp/potluck.sock] [-app cli] <cmd> ...
//
//	potluck-cli register <function> <keytype>[:<index>][,<keytype>[:<index>]...]
//	potluck-cli lookup   <function> <keytype> <k1,k2,...>
//	potluck-cli put      <function> <keytype> <k1,k2,...> <value> [cost]
//	potluck-cli stats
//	potluck-cli -admin http://127.0.0.1:9744 stats
//	potluck-cli -admin http://127.0.0.1:9744 whatif
//	potluck-cli -admin http://127.0.0.1:9744 explain <function> [n]
//	potluck-cli -admin http://127.0.0.1:9744 explain -trace <hexid>
//
// With -admin, stats is fetched from the daemon's HTTP observability
// endpoint (/stats) instead of the wire protocol, and includes the
// per-function series and latency quantiles the binary protocol does
// not carry. explain requires -admin: it renders the daemon's last n
// retained lookup decisions for a function (/debug/explain) — distance
// vs threshold, the live tuner window, and what would have flipped each
// outcome. explain -trace renders every retained span carrying one
// trace ID (/trace/spans?trace=), which for a mesh-forwarded lookup
// shows all hops — the server dispatch, the local core probe, and the
// mesh fan-out with the answering peer — under a single ID.
//
// whatif (also -admin only) renders the counterfactual profiler's
// report (/whatif): the miss-ratio curve across ghost capacities and
// policies, the per-series threshold sweeps, and the predicted-vs-
// measured hit rates. Requires the daemon to run with -whatif.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/vec"
	"repro/internal/whatif"
)

func main() {
	var (
		network = flag.String("network", "unix", `transport: "unix" or "tcp"`)
		addr    = flag.String("addr", "/tmp/potluck.sock", "service address")
		app     = flag.String("app", "cli", "application name")
		admin   = flag.String("admin", "", "daemon admin endpoint base URL (stats command only)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	if args[0] == "stats" && *admin != "" {
		if err := adminStats(*admin); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "whatif" {
		if *admin == "" {
			fail(fmt.Errorf("whatif requires -admin (the daemon's HTTP observability endpoint)"))
		}
		if err := adminWhatIf(*admin); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "explain" {
		if *admin == "" {
			fail(fmt.Errorf("explain requires -admin (the daemon's HTTP observability endpoint)"))
		}
		if len(args) == 3 && args[1] == "-trace" {
			if err := adminTrace(*admin, args[2]); err != nil {
				fail(err)
			}
			return
		}
		if len(args) != 2 && len(args) != 3 {
			usage()
		}
		n := 0
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil {
				fail(fmt.Errorf("explain count: %w", err))
			}
			n = v
		}
		if err := adminExplain(*admin, args[1], n); err != nil {
			fail(err)
		}
		return
	}

	cl, err := service.Dial(*network, *addr, *app)
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	switch args[0] {
	case "register":
		if len(args) != 3 {
			usage()
		}
		var defs []service.KeyTypeDef
		for _, name := range strings.Split(args[2], ",") {
			// "<name>:<index>" selects an index kind (kdtree, linear,
			// lsh, treemap, hash, hnsw, ivf, hnsw-pq, ivf-pq); bare
			// names take the server default.
			def := service.KeyTypeDef{Name: name}
			if i := strings.IndexByte(name, ':'); i >= 0 {
				def.Name, def.Index = name[:i], name[i+1:]
			}
			defs = append(defs, def)
		}
		if err := cl.Register(args[1], defs...); err != nil {
			fail(err)
		}
		fmt.Println("registered")
	case "lookup":
		if len(args) != 4 {
			usage()
		}
		key, err := parseKey(args[3])
		if err != nil {
			fail(err)
		}
		res, err := cl.Lookup(args[1], args[2], key)
		if err != nil {
			fail(err)
		}
		switch {
		case res.Hit:
			fmt.Printf("hit value=%q distance=%.6g threshold=%.6g trace=%s\n",
				res.Value, res.Distance, res.Threshold, res.Trace)
		case res.Dropout:
			fmt.Printf("miss (dropout) trace=%s\n", res.Trace)
		default:
			fmt.Printf("miss distance=%.6g threshold=%.6g trace=%s\n",
				res.Distance, res.Threshold, res.Trace)
		}
	case "put":
		if len(args) != 5 && len(args) != 6 {
			usage()
		}
		key, err := parseKey(args[3])
		if err != nil {
			fail(err)
		}
		var opts service.PutOptions
		if len(args) == 6 {
			cost, err := time.ParseDuration(args[5])
			if err != nil {
				fail(err)
			}
			opts.Cost = cost
		}
		id, err := cl.Put(args[1], map[string]vec.Vector{args[2]: key}, []byte(args[4]), opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("stored id=%d\n", id)
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("entries=%d bytes=%d hits=%d misses=%d dropouts=%d puts=%d evictions=%d expirations=%d saved=%s\n",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.Dropouts, st.Puts,
			st.Evictions, st.Expirations, time.Duration(st.SavedComputeN))
	default:
		usage()
	}
}

// adminStats fetches the daemon's /stats JSON and renders the global
// counters plus the per-function series table.
func adminStats(base string) error {
	url := strings.TrimSuffix(base, "/") + "/stats"
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st service.AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	printAdminStats(os.Stdout, st)
	return nil
}

func printAdminStats(w *os.File, st service.AdminStats) {
	fmt.Fprintf(w, "uptime      %s\n", (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second))
	fmt.Fprintf(w, "entries     %d (%d bytes)\n", st.Entries, st.Bytes)
	fmt.Fprintf(w, "lookups     %d hits / %d misses / %d dropouts (hit rate %.1f%%)\n",
		st.Hits, st.Misses, st.Dropouts, st.HitRate*100)
	fmt.Fprintf(w, "puts        %d accepted / %d rejected\n", st.Puts, st.RejectedPuts)
	fmt.Fprintf(w, "removed     %d evicted / %d expired / %d invalidated\n",
		st.Evictions, st.Expirations, st.Invalidations)
	fmt.Fprintf(w, "saved       %s of computation\n", time.Duration(st.SavedSeconds*float64(time.Second)).Round(time.Millisecond))
	if len(st.Functions) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-16s %-12s %-9s %8s %8s %8s %10s %9s %9s %9s\n",
		"FUNCTION", "KEYTYPE", "INDEX", "HITS", "MISSES", "DROPOUT", "THRESHOLD", "P50", "P99", "MAX")
	for _, fn := range st.Functions {
		for _, kt := range fn.KeyTypes {
			p50, p99, max := "-", "-", "-"
			if kt.Latency != nil && kt.Latency.Count > 0 {
				p50 = fmtLatency(kt.Latency.P50)
				p99 = fmtLatency(kt.Latency.P99)
				max = fmtLatency(kt.Latency.Max)
			}
			fmt.Fprintf(w, "%-16s %-12s %-9s %8d %8d %8d %10.4g %9s %9s %9s\n",
				fn.Function, kt.KeyType, kt.IndexKind, kt.Hits, kt.Misses, kt.Dropouts,
				kt.Threshold, p50, p99, max)
		}
	}
}

// adminExplain fetches /debug/explain for fn and renders the decision
// log: per-key-type live context first, then the retained decisions
// newest-first with the flip explanation for each.
func adminExplain(base, fn string, n int) error {
	u := strings.TrimSuffix(base, "/") + "/debug/explain?fn=" + url.QueryEscape(fn)
	if n > 0 {
		u += "&n=" + strconv.Itoa(n)
	}
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var rep core.ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decode %s: %w", u, err)
	}
	printExplain(os.Stdout, rep)
	return nil
}

func printExplain(w *os.File, rep core.ExplainReport) {
	fmt.Fprintf(w, "function %s: %d retained decisions\n", rep.Function, rep.Recorded)
	for _, kt := range rep.KeyTypes {
		fmt.Fprintf(w, "  keytype %-12s index=%s(len=%d) hits=%d misses=%d dropouts=%d threshold=%.6g tuner(puts=%d active=%v tighten=%d loosen=%d)\n",
			kt.KeyType, kt.IndexKind, kt.IndexLen, kt.Hits, kt.Misses, kt.Dropouts,
			kt.Tuner.Threshold, kt.Tuner.Puts, kt.Tuner.Active,
			kt.Tuner.Tightenings, kt.Tuner.Loosenings)
	}
	if len(rep.Decisions) == 0 {
		fmt.Fprintln(w, "no decisions retained yet (traced or sampled lookups populate this)")
		return
	}
	fmt.Fprintln(w, "decisions (newest first):")
	for _, d := range rep.Decisions {
		probes := "-"
		if d.Probes >= 0 {
			probes = strconv.Itoa(d.Probes)
		}
		fmt.Fprintf(w, "  %s %-8s kt=%-12s %8s probes=%-5s %s\n",
			d.Trace, d.Outcome, d.KeyType,
			time.Duration(d.DurationNs).Round(time.Microsecond), probes, d.Flip)
	}
}

// adminWhatIf fetches the counterfactual profiler's /whatif report and
// renders its three sections: miss-ratio curve, threshold sweeps, and
// predicted-vs-measured.
func adminWhatIf(base string) error {
	u := strings.TrimSuffix(base, "/") + "/whatif"
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("GET %s: 404 — the daemon is running without -whatif", u)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var rep whatif.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decode %s: %w", u, err)
	}
	printWhatIf(os.Stdout, rep)
	return nil
}

func printWhatIf(w *os.File, rep whatif.Report) {
	fmt.Fprintf(w, "sample rate %g (scale ×%g)\n", rep.Rate, rep.Scale)
	fmt.Fprintf(w, "sampled     %d lookups / %d puts", rep.SampledLookups, rep.SampledPuts)
	if rep.RingDrops > 0 {
		fmt.Fprintf(w, " (%d dropped: ring backed up)", rep.RingDrops)
	}
	if rep.SeriesOverflow > 0 {
		fmt.Fprintf(w, " (%d beyond series bound)", rep.SeriesOverflow)
	}
	fmt.Fprintln(w)

	if rep.GhostsDisabled {
		fmt.Fprintln(w, "\nmiss-ratio curve: disabled (cache has no capacity bound)")
	} else if len(rep.MissRatioCurve) > 0 {
		fmt.Fprintf(w, "\nmiss-ratio curve (capacity %d entries / %d bytes):\n",
			rep.CapacityEntries, rep.CapacityBytes)
		fmt.Fprintf(w, "  %6s %-12s %9s %9s %10s %9s\n",
			"MULT", "POLICY", "HITS", "MISSES", "EVICTIONS", "HITRATE")
		for _, pt := range rep.MissRatioCurve {
			fmt.Fprintf(w, "  %5g× %-12s %9d %9d %10d %8.1f%%\n",
				pt.Mult, pt.Policy, pt.Hits, pt.Misses, pt.Evictions, pt.HitRate*100)
		}
	}

	for _, sw := range rep.ThresholdSweeps {
		fmt.Fprintf(w, "\nthreshold sweep %s/%s (%d probes, %d with no neighbour):\n",
			sw.Function, sw.KeyType, sw.Total, sw.NoNeighbor)
		for _, pt := range sw.Points {
			fmt.Fprintf(w, "  %5g×θ %9d hits  %6.1f%%\n", pt.Mult, pt.Hits, pt.HitRate*100)
		}
	}

	if len(rep.Predictions) > 0 {
		fmt.Fprintf(w, "\npredicted vs measured (tolerance %.2f):\n", rep.Tolerance)
		fmt.Fprintf(w, "  %-16s %-12s %8s %9s %9s %9s %s\n",
			"FUNCTION", "KEYTYPE", "SAMPLES", "PREDICT", "MEASURE", "DIVERGE", "")
		for _, pr := range rep.Predictions {
			flag := ""
			if pr.Diverged {
				flag = "DIVERGED"
			}
			fmt.Fprintf(w, "  %-16s %-12s %8d %8.1f%% %8.1f%% %9.3f %s\n",
				pr.Function, pr.KeyType, pr.Samples,
				pr.Predicted*100, pr.Measured*100, pr.Divergence, flag)
		}
		fmt.Fprintf(w, "max divergence %.3f\n", rep.MaxDivergence)
	}
}

// adminTrace fetches every retained span carrying one trace ID from
// /trace/spans and renders them oldest-first, one line per hop. A
// lookup answered by a mesh peer produces (at least) a server span,
// a core span, and a mesh span whose "peer" stage names the answering
// node — all under the same ID, which is the whole point of printing
// them together.
func adminTrace(base, hexID string) error {
	id, err := telemetry.ParseTraceID(hexID)
	if err != nil {
		return err
	}
	u := strings.TrimSuffix(base, "/") + "/trace/spans?trace=" + url.QueryEscape(id.String())
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var body struct {
		Recorded uint64           `json:"recorded"`
		Capacity int              `json:"capacity"`
		Spans    []telemetry.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("decode %s: %w", u, err)
	}
	printTrace(os.Stdout, id, body.Spans)
	return nil
}

func printTrace(w *os.File, id telemetry.TraceID, spans []telemetry.Span) {
	if len(spans) == 0 {
		fmt.Fprintf(w, "trace %s: no retained spans (the span ring may have rotated, or the lookup was not traced)\n", id)
		return
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Seq < spans[j].Seq
	})
	fmt.Fprintf(w, "trace %s: %d spans\n", id, len(spans))
	base := spans[0].Start
	for _, sp := range spans {
		loc := sp.Function
		if sp.KeyType != "" {
			loc += "/" + sp.KeyType
		}
		fmt.Fprintf(w, "  +%-9s %-8s %-8s %-24s %8s",
			time.Duration(sp.Start-base).Round(time.Microsecond),
			sp.Layer, sp.Outcome, loc,
			time.Duration(sp.DurationNs).Round(time.Microsecond))
		if sp.Outcome == "hit" {
			fmt.Fprintf(w, "  distance=%.6g threshold=%.6g", sp.Distance, sp.Threshold)
		}
		if sp.Err != "" {
			fmt.Fprintf(w, "  err=%q", sp.Err)
		}
		fmt.Fprintln(w)
		for _, st := range sp.Stages {
			detail := ""
			if st.Detail != "" {
				detail = "  " + st.Detail
			}
			fmt.Fprintf(w, "    · %-12s %8s%s\n",
				st.Name, time.Duration(st.DurationNs).Round(time.Microsecond), detail)
		}
	}
}

func fmtLatency(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func parseKey(s string) (vec.Vector, error) {
	parts := strings.Split(s, ",")
	key := make(vec.Vector, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("key component %d: %w", i, err)
		}
		key[i] = v
	}
	return key, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: potluck-cli [flags] <command>
  register <function> <keytype>[:<index>][,<keytype>[:<index>]...]
  lookup   <function> <keytype> <k1,k2,...>
  put      <function> <keytype> <k1,k2,...> <value> [cost]
  stats    (with -admin URL: fetch the rich JSON stats over HTTP)
  whatif   (requires -admin URL: render the counterfactual profiler's
           miss-ratio curve, threshold sweeps, predicted-vs-measured)
  explain  <function> [n]   (requires -admin URL: render the daemon's
           last n retained lookup decisions and what would flip them)
  explain  -trace <hexid>   (requires -admin URL: render every retained
           span for one trace ID — all hops of a mesh-forwarded lookup)`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
