// Command potluck-cli is a hand-driven client for a running potluckd,
// exposing the register()/lookup()/put() API of §4.3 from the shell.
//
// Usage:
//
//	potluck-cli [-network unix] [-addr /tmp/potluck.sock] [-app cli] <cmd> ...
//
//	potluck-cli register <function> <keytype>[,<keytype>...]
//	potluck-cli lookup   <function> <keytype> <k1,k2,...>
//	potluck-cli put      <function> <keytype> <k1,k2,...> <value> [cost]
//	potluck-cli stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/vec"
)

func main() {
	var (
		network = flag.String("network", "unix", `transport: "unix" or "tcp"`)
		addr    = flag.String("addr", "/tmp/potluck.sock", "service address")
		app     = flag.String("app", "cli", "application name")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	cl, err := service.Dial(*network, *addr, *app)
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	switch args[0] {
	case "register":
		if len(args) != 3 {
			usage()
		}
		var defs []service.KeyTypeDef
		for _, name := range strings.Split(args[2], ",") {
			defs = append(defs, service.KeyTypeDef{Name: name})
		}
		if err := cl.Register(args[1], defs...); err != nil {
			fail(err)
		}
		fmt.Println("registered")
	case "lookup":
		if len(args) != 4 {
			usage()
		}
		key, err := parseKey(args[3])
		if err != nil {
			fail(err)
		}
		res, err := cl.Lookup(args[1], args[2], key)
		if err != nil {
			fail(err)
		}
		switch {
		case res.Hit:
			fmt.Printf("hit value=%q distance=%.6g threshold=%.6g\n",
				res.Value, res.Distance, res.Threshold)
		case res.Dropout:
			fmt.Println("miss (dropout)")
		default:
			fmt.Printf("miss distance=%.6g threshold=%.6g\n", res.Distance, res.Threshold)
		}
	case "put":
		if len(args) != 5 && len(args) != 6 {
			usage()
		}
		key, err := parseKey(args[3])
		if err != nil {
			fail(err)
		}
		var opts service.PutOptions
		if len(args) == 6 {
			cost, err := time.ParseDuration(args[5])
			if err != nil {
				fail(err)
			}
			opts.Cost = cost
		}
		id, err := cl.Put(args[1], map[string]vec.Vector{args[2]: key}, []byte(args[4]), opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("stored id=%d\n", id)
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("entries=%d bytes=%d hits=%d misses=%d dropouts=%d puts=%d evictions=%d expirations=%d saved=%s\n",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.Dropouts, st.Puts,
			st.Evictions, st.Expirations, time.Duration(st.SavedComputeN))
	default:
		usage()
	}
}

func parseKey(s string) (vec.Vector, error) {
	parts := strings.Split(s, ",")
	key := make(vec.Vector, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("key component %d: %w", i, err)
		}
		key[i] = v
	}
	return key, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: potluck-cli [flags] <command>
  register <function> <keytype>[,<keytype>...]
  lookup   <function> <keytype> <k1,k2,...>
  put      <function> <keytype> <k1,k2,...> <value> [cost]
  stats`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
