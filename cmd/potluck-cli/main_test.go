package main

import "testing"

func TestParseKey(t *testing.T) {
	key, err := parseKey("1,2.5, -3")
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 3 || key[0] != 1 || key[1] != 2.5 || key[2] != -3 {
		t.Errorf("parseKey = %v", key)
	}
	if _, err := parseKey("1,x,3"); err == nil {
		t.Error("malformed component accepted")
	}
	if _, err := parseKey(""); err == nil {
		t.Error("empty key accepted")
	}
	one, err := parseKey("42")
	if err != nil || len(one) != 1 || one[0] != 42 {
		t.Errorf("scalar key = %v, %v", one, err)
	}
}
