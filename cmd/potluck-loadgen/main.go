// Command potluck-loadgen drives a running potluckd with an open-loop
// workload and reports throughput and latency percentiles against a
// target SLO.
//
// The generator is open-loop (constant arrival rate, wrk2-style), not
// closed-loop: operation i is dispatched at start + i/rate regardless of
// whether earlier operations have completed, and each latency is
// measured from the operation's *intended* arrival time. A server that
// stalls therefore shows up as growing latency, not as a silently
// reduced offered load — the coordinated-omission trap a closed loop
// falls into.
//
// The workload models the paper's setting: -devices independent synth
// video feeds (successive frames are slightly distorted versions of one
// another, §2.2), -apps applications per device sharing the cache, keys
// drawn from each feed via the Downsamp extractor (Table 1) under a
// -dist popularity distribution. -batch groups consecutive arrivals
// into one MultiLookup/MultiPut wire frame; -batch 1 uses the
// single-operation messages.
//
// Usage:
//
//	potluck-loadgen [-network unix|tcp] [-addr /tmp/potluck.sock]
//	                [-addrs /run/a.sock,/run/b.sock,/run/c.sock]
//	                [-rate 2000] [-duration 10s] [-warmup 1s]
//	                [-devices 4] [-apps 2] [-batch 1] [-keys 256]
//	                [-dist exponential] [-put-ratio 0.05]
//	                [-slo 5ms] [-seed 1]
//
// -addrs targets a mesh: connections round-robin across the listed
// peers (overriding -addr), every peer is seeded, and the report breaks
// throughput, hit rate, errors, and latency out per peer alongside the
// aggregate — so killing one peer mid-run shows up as that peer's error
// count, not as a poisoned aggregate.
//
// The run's report is written to stdout as JSON (progress goes to
// stderr); the "throughput_ops_per_sec" and "slo_met" fields are the
// machine-readable summary CI keys on. The "env" section (git revision,
// Go version, GOMAXPROCS) plus the effective config make a report
// reproducible across hosts. The "servers" section is each target's own
// view of the run, scraped over the wire protocol at run end — cache
// hit/miss/dropout counters, entry count, and saved compute — so a
// client-vs-server hit-rate mismatch (e.g. dropped frames, mesh
// forwarding) is visible in one document.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feature"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/vec"
	"repro/internal/workload"
)

const function = "loadgen"

func main() {
	var (
		network  = flag.String("network", "unix", `transport: "unix" or "tcp"`)
		addr     = flag.String("addr", "/tmp/potluck.sock", "socket path (unix) or host:port (tcp)")
		addrs    = flag.String("addrs", "", "comma-separated mesh peer addresses; connections round-robin across them (overrides -addr)")
		rate     = flag.Float64("rate", 2000, "offered load in lookups/sec across all connections")
		duration = flag.Duration("duration", 10*time.Second, "measured run length")
		warmup   = flag.Duration("warmup", time.Second, "initial window excluded from the report")
		devices  = flag.Int("devices", 4, "simulated devices, each with its own video feed")
		apps     = flag.Int("apps", 2, "applications per device, each with its own connection")
		batch    = flag.Int("batch", 1, "arrivals grouped into one wire frame (1 = single-op messages)")
		keys     = flag.Int("keys", 256, "key-pool size per device (frames extracted from its feed)")
		dist     = flag.String("dist", "exponential", "key popularity: uniform, exponential, zipf")
		putRatio = flag.Float64("put-ratio", 0.05, "fraction of dispatches that are puts instead of lookups")
		slo      = flag.Duration("slo", 5*time.Millisecond, "p99 latency objective the report judges")
		seed     = flag.Int64("seed", 1, "workload seed (feeds, popularity, op mix)")
	)
	flag.Parse()
	if *rate <= 0 || *devices < 1 || *apps < 1 || *batch < 1 || *keys < 1 {
		log.Fatal("potluck-loadgen: -rate, -devices, -apps, -batch and -keys must be positive")
	}
	if *batch > service.MaxBatch {
		log.Fatalf("potluck-loadgen: -batch %d exceeds the wire limit %d", *batch, service.MaxBatch)
	}

	log.SetOutput(os.Stderr)
	targets := parseTargets(*addrs, *addr)
	pools := buildKeyPools(*devices, *keys, *seed)

	// One connection per device×app pair: the paper's picture is many
	// applications sharing one service, each over its own IPC socket.
	// With multiple targets, a device's apps land on DIFFERENT mesh
	// nodes (round-robin by connection index), so the same content is
	// looked up via several nodes — the cross-node dedup the mesh exists
	// for.
	conns := make([]*service.Client, 0, *devices*(*apps))
	for d := 0; d < *devices; d++ {
		for a := 0; a < *apps; a++ {
			ci := len(conns)
			cl, err := service.Dial(*network, targets[ci%len(targets)], fmt.Sprintf("dev%d-app%d", d, a))
			if err != nil {
				log.Fatalf("potluck-loadgen: dial: %v", err)
			}
			defer cl.Close()
			conns = append(conns, cl)
		}
	}
	// Every target registers the function and holds the seed set, so the
	// measured run starts from the same warm state on every peer.
	for _, tgt := range targets {
		cl, err := service.Dial(*network, tgt, "loadgen-seed")
		if err != nil {
			log.Fatalf("potluck-loadgen: dial %s: %v", tgt, err)
		}
		if err := cl.Register(function, service.KeyTypeDef{
			Name:  feature.Downsample{}.Name(),
			Index: "kdtree",
			Dim:   feature.DownsampleDims,
		}); err != nil {
			log.Fatalf("potluck-loadgen: register %s: %v", tgt, err)
		}
		seedPools(cl, pools)
		cl.Close()
	}

	r := run(conns, pools, runConfig{
		rate:     *rate,
		duration: *duration,
		warmup:   *warmup,
		batch:    *batch,
		dist:     workload.Distribution(*dist),
		putRatio: *putRatio,
		seed:     *seed,
		targets:  targets,
	})
	r.SLOMs = float64(*slo) / float64(time.Millisecond)
	r.SLOMet = r.Latency.P99 <= r.SLOMs
	r.Config = reportConfig{
		Rate: *rate, DurationSec: duration.Seconds(), WarmupSec: warmup.Seconds(),
		Devices: *devices, Apps: *apps, Batch: *batch, Keys: *keys, Dist: *dist,
		PutRatio: *putRatio, Seed: *seed, SLOMs: float64(*slo) / float64(time.Millisecond),
		Network: *network, Targets: targets,
	}
	r.Env = buildEnv()
	r.Servers = scrapeServers(*network, targets)

	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("potluck-loadgen: report: %v", err)
	}
	os.Stdout.Write(append(out, '\n'))
	if !r.SLOMet {
		os.Exit(1)
	}
}

// scrapeServers fetches each target's wire-protocol stats at run end.
// A scrape failure is reported in the row, not fatal: the load numbers
// are already collected and a peer that died mid-run is exactly the
// case the per-target breakdown exists for.
func scrapeServers(network string, targets []string) []serverReport {
	out := make([]serverReport, 0, len(targets))
	for _, tgt := range targets {
		row := serverReport{Addr: tgt}
		cl, err := service.Dial(network, tgt, "loadgen-stats")
		if err != nil {
			row.Err = err.Error()
			out = append(out, row)
			continue
		}
		st, err := cl.Stats()
		cl.Close()
		if err != nil {
			row.Err = err.Error()
			out = append(out, row)
			continue
		}
		row.Hits, row.Misses, row.Dropouts = st.Hits, st.Misses, st.Dropouts
		row.Puts, row.Evictions, row.Expirations = st.Puts, st.Evictions, st.Expirations
		row.Entries, row.Bytes = st.Entries, st.Bytes
		row.SavedComputeSec = float64(st.SavedComputeN) / float64(time.Second)
		if total := st.Hits + st.Misses; total > 0 {
			// Same convention as core.Stats.HitRate: dropouts are counted
			// separately, not as misses.
			row.HitRate = float64(st.Hits) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// parseTargets resolves the effective target list: -addrs entries when
// given, else the single -addr.
func parseTargets(addrs, addr string) []string {
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = []string{addr}
	}
	return out
}

// buildEnv captures the build and host facts that make a report
// reproducible: which revision produced the numbers and how much
// parallelism the host offered.
func buildEnv() reportEnv {
	env := reportEnv{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GitRevision: "unknown",
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				env.GitRevision = s.Value
			case "vcs.modified":
				env.GitDirty = s.Value == "true"
			}
		}
	}
	return env
}

// buildKeyPools extracts each device's key pool from its own correlated
// synth feed. Pools are precomputed so key generation never competes
// with the dispatch loop for CPU during the measured run.
func buildKeyPools(devices, keys int, seed int64) [][]vec.Vector {
	ext := feature.Downsample{}
	pools := make([][]vec.Vector, devices)
	for d := range pools {
		feed := synth.NewVideo(synth.VideoConfig{Seed: seed + int64(d), CutEvery: keys/4 + 1})
		pool := make([]vec.Vector, keys)
		for i := range pool {
			pool[i] = ext.Extract(feed.Frame(i)).Key
		}
		pools[d] = pool
	}
	return pools
}

// seedPools inserts every pool key up front so the measured run exercises
// the hit path (the steady state the paper cares about); -put-ratio keeps
// the write path in the mix.
func seedPools(cl *service.Client, pools [][]vec.Vector) {
	kt := feature.Downsample{}.Name()
	subs := make([]service.PutSub, 0, service.MaxBatch)
	flush := func() {
		if len(subs) == 0 {
			return
		}
		if _, err := cl.MultiPut(subs); err != nil {
			log.Fatalf("potluck-loadgen: seed puts: %v", err)
		}
		subs = subs[:0]
	}
	for d, pool := range pools {
		for i, key := range pool {
			subs = append(subs, service.PutSub{
				Function: function,
				Keys:     map[string]vec.Vector{kt: key},
				Value:    []byte(fmt.Sprintf("result-%d-%d", d, i)),
				Cost:     int64(10 * time.Millisecond),
			})
			if len(subs) == service.MaxBatch {
				flush()
			}
		}
	}
	flush()
}

type runConfig struct {
	rate     float64
	duration time.Duration
	warmup   time.Duration
	batch    int
	dist     workload.Distribution
	putRatio float64
	seed     int64
	// targets mirrors the dial order: conn i talks to targets[i%len].
	targets []string
}

// dispatch is one wire frame's worth of work: cfg.batch consecutive
// arrivals bound to one connection, dispatched at the intended time of
// the frame's first arrival.
type dispatch struct {
	conn   *service.Client
	keys   []vec.Vector
	put    bool
	warm   bool
	target time.Time
	// tgt indexes runConfig.targets: which peer this frame went to.
	tgt int
}

type counters struct {
	ops, puts, hits, errors, warmOps atomic.Int64
	outstanding, peakOutstanding     atomic.Int64
}

// targetCounters aggregates one mesh peer's share of the run.
type targetCounters struct {
	ops, hits, errors atomic.Int64
}

func run(conns []*service.Client, pools [][]vec.Vector, cfg runConfig) *report {
	kt := feature.Downsample{}.Name()
	rng := rand.New(rand.NewSource(cfg.seed))
	// Precompute enough popularity-distributed key indices for the whole
	// run so the dispatch loop does no random-number work.
	perPool := len(pools[0])
	total := int(cfg.rate*(cfg.duration+cfg.warmup).Seconds()) + 2*cfg.batch
	seq := workload.Sequence(cfg.dist, perPool, total, rng)

	var (
		cnt     counters
		perTgt  = make([]targetCounters, len(cfg.targets))
		mu      sync.Mutex
		lats    []time.Duration
		tgtLats = make([][]time.Duration, len(cfg.targets))
		wg      sync.WaitGroup
	)
	execute := func(d dispatch) {
		defer wg.Done()
		defer cnt.outstanding.Add(-1)
		var errs, hits int
		if d.put {
			errs = doPut(d, kt)
		} else {
			errs, hits = doLookup(d, kt)
		}
		lat := time.Since(d.target) // from intended arrival: open-loop
		n := int64(len(d.keys))
		cnt.errors.Add(int64(errs))
		perTgt[d.tgt].errors.Add(int64(errs))
		if d.warm {
			cnt.warmOps.Add(n)
			return
		}
		cnt.ops.Add(n)
		cnt.hits.Add(int64(hits))
		perTgt[d.tgt].ops.Add(n)
		perTgt[d.tgt].hits.Add(int64(hits))
		if d.put {
			cnt.puts.Add(n)
		}
		mu.Lock()
		for i := 0; i < len(d.keys); i++ {
			lats = append(lats, lat)
			tgtLats[d.tgt] = append(tgtLats[d.tgt], lat)
		}
		mu.Unlock()
	}

	interval := time.Duration(float64(cfg.batch) / cfg.rate * float64(time.Second))
	start := time.Now()
	warmUntil := start.Add(cfg.warmup)
	end := warmUntil.Add(cfg.duration)
	log.Printf("potluck-loadgen: offered %.0f ops/s, batch %d (one frame per %v), %d conns, warm %v, run %v",
		cfg.rate, cfg.batch, interval, len(conns), cfg.warmup, cfg.duration)

	next := 0 // cursor into seq
	for i := 0; ; i++ {
		target := start.Add(time.Duration(i) * interval)
		if !target.Before(end) {
			break
		}
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		// Connections are dev-major (dev0-app0, dev0-app1, ...), so the
		// device — and with it the key pool — is the conn index over apps.
		ci := i % len(conns)
		conn := conns[ci]
		pool := pools[ci/(len(conns)/len(pools))]
		ks := make([]vec.Vector, cfg.batch)
		for j := range ks {
			ks[j] = pool[seq[(next+j)%len(seq)]]
		}
		next += cfg.batch
		d := dispatch{
			conn:   conn,
			keys:   ks,
			put:    rng.Float64() < cfg.putRatio,
			warm:   target.Before(warmUntil),
			target: target,
			tgt:    ci % len(cfg.targets),
		}
		out := cnt.outstanding.Add(1)
		for {
			peak := cnt.peakOutstanding.Load()
			if out <= peak || cnt.peakOutstanding.CompareAndSwap(peak, out) {
				break
			}
		}
		wg.Add(1)
		go execute(d)
	}
	wg.Wait()
	elapsed := time.Since(warmUntil)

	r := &report{
		Ops:              cnt.ops.Load(),
		Puts:             cnt.puts.Load(),
		Hits:             cnt.hits.Load(),
		Errors:           cnt.errors.Load(),
		WarmupOps:        cnt.warmOps.Load(),
		PeakOutstanding:  cnt.peakOutstanding.Load(),
		ElapsedSec:       elapsed.Seconds(),
		OfferedOpsPerSec: cfg.rate,
	}
	if elapsed > 0 {
		r.ThroughputOpsPerSec = float64(r.Ops) / elapsed.Seconds()
	}
	if looks := r.Ops - r.Puts; looks > 0 {
		r.HitRate = float64(r.Hits) / float64(looks)
	}
	r.Latency = percentiles(lats)
	for ti, tgt := range cfg.targets {
		tr := targetReport{
			Addr:    tgt,
			Ops:     perTgt[ti].ops.Load(),
			Hits:    perTgt[ti].hits.Load(),
			Errors:  perTgt[ti].errors.Load(),
			Latency: percentiles(tgtLats[ti]),
		}
		if elapsed > 0 {
			tr.ThroughputOpsPerSec = float64(tr.Ops) / elapsed.Seconds()
		}
		if tr.Ops > 0 {
			tr.HitRate = float64(tr.Hits) / float64(tr.Ops)
		}
		r.Targets = append(r.Targets, tr)
	}
	return r
}

// doLookup issues one wire frame of lookups and returns (errors, hits).
func doLookup(d dispatch, kt string) (errs, hits int) {
	if len(d.keys) == 1 {
		res, err := d.conn.Lookup(function, kt, d.keys[0])
		if err != nil {
			return 1, 0
		}
		if res.Hit {
			return 0, 1
		}
		return 0, 0
	}
	subs := make([]service.LookupSub, len(d.keys))
	for i, k := range d.keys {
		subs[i] = service.LookupSub{Function: function, KeyType: kt, Key: k}
	}
	res, err := d.conn.MultiLookup(subs)
	if err != nil {
		return len(d.keys), 0
	}
	for _, r := range res {
		switch {
		case r.Err != nil:
			errs++
		case r.Hit:
			hits++
		}
	}
	return errs, hits
}

// doPut issues one wire frame of puts and returns the error count.
func doPut(d dispatch, kt string) (errs int) {
	if len(d.keys) == 1 {
		if _, err := d.conn.Put(function, map[string]vec.Vector{kt: d.keys[0]},
			[]byte("refreshed"), service.PutOptions{Cost: 10 * time.Millisecond}); err != nil {
			return 1
		}
		return 0
	}
	subs := make([]service.PutSub, len(d.keys))
	for i, k := range d.keys {
		subs[i] = service.PutSub{
			Function: function,
			Keys:     map[string]vec.Vector{kt: k},
			Value:    []byte("refreshed"),
			Cost:     int64(10 * time.Millisecond),
		}
	}
	res, err := d.conn.MultiPut(subs)
	if err != nil {
		return len(d.keys)
	}
	for _, r := range res {
		if r.Err != nil {
			errs++
		}
	}
	return errs
}

type latencyMs struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func percentiles(lats []time.Duration) latencyMs {
	if len(lats) == 0 {
		return latencyMs{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return latencyMs{
		P50: at(0.50), P90: at(0.90), P99: at(0.99), P999: at(0.999),
		Max: float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}

// reportConfig is the effective workload configuration, complete enough
// to re-run the exact same load on another host.
type reportConfig struct {
	Rate        float64  `json:"rate"`
	DurationSec float64  `json:"duration_sec"`
	WarmupSec   float64  `json:"warmup_sec"`
	Devices     int      `json:"devices"`
	Apps        int      `json:"apps"`
	Batch       int      `json:"batch"`
	Keys        int      `json:"keys"`
	Dist        string   `json:"dist"`
	PutRatio    float64  `json:"put_ratio"`
	Seed        int64    `json:"seed"`
	SLOMs       float64  `json:"slo_ms"`
	Network     string   `json:"network"`
	Targets     []string `json:"targets"`
}

// reportEnv records the build and host the numbers came from, so a
// BENCH_core.json splice is attributable across machines.
type reportEnv struct {
	GitRevision string `json:"git_revision"`
	GitDirty    bool   `json:"git_dirty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
}

// serverReport is one target daemon's own counters, scraped over the
// wire protocol when the run ends. These are server-lifetime totals
// (seeding included), not a warmup-excluded window like the client-side
// numbers — the two views answer different questions.
type serverReport struct {
	Addr            string  `json:"addr"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	Dropouts        int64   `json:"dropouts"`
	HitRate         float64 `json:"hit_rate"`
	Puts            int64   `json:"puts"`
	Evictions       int64   `json:"evictions"`
	Expirations     int64   `json:"expirations"`
	Entries         int64   `json:"entries"`
	Bytes           int64   `json:"bytes"`
	SavedComputeSec float64 `json:"saved_compute_sec"`
	Err             string  `json:"err,omitempty"`
}

// targetReport is one mesh peer's share of the run.
type targetReport struct {
	Addr                string    `json:"addr"`
	Ops                 int64     `json:"ops"`
	Hits                int64     `json:"hits"`
	HitRate             float64   `json:"hit_rate"`
	Errors              int64     `json:"errors"`
	ThroughputOpsPerSec float64   `json:"throughput_ops_per_sec"`
	Latency             latencyMs `json:"latency_ms"`
}

type report struct {
	Config              reportConfig   `json:"config"`
	Env                 reportEnv      `json:"env"`
	Ops                 int64          `json:"ops"`
	Puts                int64          `json:"puts"`
	Hits                int64          `json:"hits"`
	HitRate             float64        `json:"hit_rate"`
	Errors              int64          `json:"errors"`
	WarmupOps           int64          `json:"warmup_ops"`
	PeakOutstanding     int64          `json:"peak_outstanding"`
	ElapsedSec          float64        `json:"elapsed_sec"`
	OfferedOpsPerSec    float64        `json:"offered_ops_per_sec"`
	ThroughputOpsPerSec float64        `json:"throughput_ops_per_sec"`
	Latency             latencyMs      `json:"latency_ms"`
	SLOMs               float64        `json:"slo_ms"`
	SLOMet              bool           `json:"slo_met"`
	Targets             []targetReport `json:"targets"`
	Servers             []serverReport `json:"servers"`
}
