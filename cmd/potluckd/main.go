// Command potluckd runs the Potluck deduplication service as a
// background daemon, the role the Android service plays in the paper
// (§4). Applications connect over a Unix domain socket (default) or TCP
// and issue register/lookup/put requests; see cmd/potluck-cli for a
// hand-driven client and examples/multiapp for programmatic use.
//
// Usage:
//
//	potluckd [-network unix|tcp] [-addr /run/potluck.sock]
//	         [-max-entries N] [-max-bytes N] [-ttl 1h]
//	         [-dropout 0.1] [-policy importance|lru|random|fifo]
//	         [-max-conns N] [-max-handlers N] [-idle-timeout 2m]
//	         [-read-timeout 10s] [-write-timeout 10s] [-drain-timeout 5s]
//	         [-admin-addr 127.0.0.1:9744]
//	         [-data-dir /var/lib/potluck] [-snapshot-interval 1m]
//	         [-fsync always|interval|never] [-fsync-interval 100ms]
//	         [-segment-bytes N]
//
// -admin-addr starts an HTTP observability endpoint serving /metrics
// (Prometheus text), /stats and /trace (JSON), and /debug/pprof/.
//
// -data-dir enables the durable store (internal/store): every
// registration, admission, and removal is appended to a crash-safe
// segment log, snapshots are taken on -snapshot-interval, and at boot
// the cache state — entries, per-function counters, and tuner
// thresholds — is recovered before the socket opens. It subsumes the
// older -snapshot single-file mechanism, which remains for experiment
// compatibility.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	var (
		network    = flag.String("network", "unix", `transport: "unix" or "tcp"`)
		addr       = flag.String("addr", "/tmp/potluck.sock", "socket path (unix) or host:port (tcp)")
		maxEntries = flag.Int("max-entries", 0, "entry capacity (0 = unlimited)")
		maxBytes   = flag.Int64("max-bytes", 512<<20, "byte capacity (paper's 512 MB heap bound)")
		ttl        = flag.Duration("ttl", time.Hour, "entry validity period")
		dropout    = flag.Float64("dropout", core.DefaultDropoutRate, "random-dropout probability")
		policy     = flag.String("policy", "importance", "eviction policy: importance, lru, random, fifo")
		warmup     = flag.Int("warmup", 100, "entries cached before threshold tuning activates (z)")
		tightenK   = flag.Float64("tighten-k", 4, "threshold tightening divisor (k)")
		gamma      = flag.Float64("gamma", 0.8, "threshold loosening EWMA weight (γ)")
		reputation = flag.Bool("reputation", false, "enable the cache-pollution reputation defence")
		snapshot   = flag.String("snapshot", "", "snapshot file: loaded at boot if present, written at shutdown")

		dataDir       = flag.String("data-dir", "", "durable store directory: segment log + snapshots, recovered at boot (empty = in-memory only)")
		snapInterval  = flag.Duration("snapshot-interval", time.Minute, "durable store snapshot+compaction cadence")
		fsyncPolicy   = flag.String("fsync", "interval", "durable store fsync policy: always, interval, never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync interval")
		segmentBytes  = flag.Int64("segment-bytes", 8<<20, "durable store segment roll size")

		maxConns     = flag.Int("max-conns", 0, "connection cap (0 = default 1024, -1 = unlimited)")
		maxHandlers  = flag.Int("max-handlers", 0, "concurrent request handler cap, the AppListener threadpool width (0 = default 256, -1 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-connection idle/next-request deadline (0 = default 2m, -1ns = none)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-request body read deadline (0 = default 10s, -1ns = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-reply write deadline (0 = default 10s, -1ns = none)")
		drainTimeout = flag.Duration("drain-timeout", 0, "graceful-shutdown drain budget for in-flight requests (0 = default 5s)")

		adminAddr = flag.String("admin-addr", "", "HTTP observability endpoint address, e.g. 127.0.0.1:9744 (empty = disabled)")
	)
	flag.Parse()

	if _, err := core.NewPolicy(core.PolicyKind(*policy)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.Config{
		MaxEntries:  *maxEntries,
		MaxBytes:    *maxBytes,
		DefaultTTL:  *ttl,
		DropoutRate: *dropout,
		Policy:      core.PolicyKind(*policy),
		Tuner:       core.TunerConfig{WarmupZ: *warmup, K: *tightenK, Gamma: *gamma},
	}
	if *dropout <= 0 {
		cfg.DisableDropout = true
	}
	if *reputation {
		cfg.Reputation = &core.ReputationConfig{}
	}

	if *network == "unix" {
		// A stale socket from an unclean shutdown blocks the listener.
		os.Remove(*addr)
	}
	var tel *telemetry.Telemetry
	if *adminAddr != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
		// Key generation is the hit path's fixed cost: expose per-extractor
		// extraction latency on /metrics for any in-process extraction.
		feature.Instrument(tel.Registry)
	}
	var durable *store.Log
	if *dataDir != "" {
		fsp, err := store.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		durable, err = store.Open(store.Config{
			Dir:              *dataDir,
			SegmentBytes:     *segmentBytes,
			Fsync:            fsp,
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapInterval,
			Logf:             log.Printf,
		})
		if err != nil {
			log.Fatalf("potluckd: %v", err)
		}
		cfg.Store = durable
	}
	cache := core.New(cfg)
	if durable != nil {
		// Recover BEFORE the socket opens, so the first lookup already
		// sees the pre-crash entries and tuner thresholds.
		state, rstats, err := durable.Recover()
		if err != nil {
			log.Fatalf("potluckd: recovery: %v", err)
		}
		st, err := cache.Restore(state)
		if err != nil {
			log.Fatalf("potluckd: restore: %v", err)
		}
		log.Printf("potluckd: recovered %d entries across %d functions in %s (expired=%d skipped=%d torn-tail=%v snapshot=%v)",
			st.Entries, st.Functions, rstats.Duration.Round(time.Millisecond),
			st.Expired, st.Skipped, rstats.TornTail, rstats.SnapshotUsed)
	}
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			st, err := cache.ReadSnapshot(f)
			f.Close()
			if err != nil {
				log.Printf("potluckd: snapshot load: %v", err)
			} else {
				log.Printf("potluckd: restored %d entries across %d functions (%d skipped)",
					st.Entries, st.Functions, st.Skipped)
			}
		}
	}
	srv := service.NewServerConfig(cache, service.ServerConfig{
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxConns:     *maxConns,
		MaxHandlers:  *maxHandlers,
		DrainTimeout: *drainTimeout,
	})
	srv.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The snapshot loop gets its own context: it must outlive the signal
	// context so the final snapshot runs after the server has drained
	// in-flight puts, not concurrently with them.
	var storeDone chan struct{}
	var storeStop context.CancelFunc
	if durable != nil {
		var storeCtx context.Context
		storeCtx, storeStop = context.WithCancel(context.Background())
		storeDone = make(chan struct{})
		go func() {
			defer close(storeDone)
			durable.Run(storeCtx, cache)
		}()
	}

	started := time.Now()
	var admin *http.Server
	if tel != nil {
		srv.Instrument(tel)
		if durable != nil {
			durable.Instrument(tel.Registry)
		}
		admin = &http.Server{
			Addr: *adminAddr,
			Handler: telemetry.AdminHandlerConfig(tel, telemetry.AdminConfig{
				Stats:   func() any { return srv.AdminStats(started) },
				Explain: func(fn string, n int) (any, error) { return cache.Explain(fn, n) },
			}),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("potluckd: admin endpoint on http://%s (/metrics /stats /trace /trace/spans /debug/explain /debug/pprof/)", *adminAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("potluckd: admin endpoint: %v", err)
			}
		}()
	}
	scfg := srv.Config()
	log.Printf("potluckd: listening on %s %s (policy=%s ttl=%s dropout=%.2f max-conns=%d max-handlers=%d idle=%s)",
		*network, *addr, *policy, *ttl, *dropout, scfg.MaxConns, scfg.MaxHandlers, scfg.IdleTimeout)
	if err := srv.ListenAndServe(ctx, *network, *addr); err != nil {
		log.Fatalf("potluckd: %v", err)
	}
	srv.Close() // drain in-flight requests before snapshotting
	if durable != nil {
		storeStop() // Run takes its final snapshot on the way out
		<-storeDone
		if err := durable.Close(); err != nil {
			log.Printf("potluckd: durable store close: %v", err)
		}
	}
	if admin != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(sctx)
		scancel()
	}
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Printf("potluckd: snapshot save: %v", err)
		} else {
			st, err := cache.WriteSnapshot(f)
			f.Close()
			if err != nil {
				log.Printf("potluckd: snapshot save: %v", err)
			} else {
				log.Printf("potluckd: saved %d entries (%d skipped)", st.Entries, st.Skipped)
			}
		}
	}
	log.Printf("potluckd: shut down")
}
