// Command potluckd runs the Potluck deduplication service as a
// background daemon, the role the Android service plays in the paper
// (§4). Applications connect over a Unix domain socket (default) or TCP
// and issue register/lookup/put requests; see cmd/potluck-cli for a
// hand-driven client and examples/multiapp for programmatic use.
//
// Usage:
//
//	potluckd [-network unix|tcp] [-addr /run/potluck.sock]
//	         [-max-entries N] [-max-bytes N] [-ttl 1h]
//	         [-dropout 0.1] [-policy importance|lru|random|fifo]
//	         [-max-conns N] [-max-handlers N] [-idle-timeout 2m]
//	         [-read-timeout 10s] [-write-timeout 10s] [-drain-timeout 5s]
//	         [-admin-addr 127.0.0.1:9744]
//	         [-data-dir /var/lib/potluck] [-snapshot-interval 1m]
//	         [-fsync always|interval|never] [-fsync-interval 100ms]
//	         [-segment-bytes N]
//	         [-node-id A] [-peers B=/run/b.sock,C=/run/c.sock]
//	         [-replicas 2] [-peer-timeout 2s] [-peer-failures 3]
//	         [-peer-cooldown 5s]
//	         [-whatif] [-whatif-rate 0.015625]
//	         [-whatif-capacities 0.25,0.5,1,2,4]
//	         [-whatif-grid 0,0.25,0.5,0.75,1,1.5,2,3,4]
//
// -peers joins the daemon to a cache mesh: each entry is id=addr (the
// peer's -node-id and socket, dialed over the same -network transport).
// Ownership of every (function, keyType) namespace is rendezvous-hashed
// across the members; lookups that miss locally are forwarded to the
// namespace's owner peers and puts are replicated to -replicas owners.
// A per-peer circuit breaker demotes dead peers and re-admits them
// after recovery.
//
// -admin-addr starts an HTTP observability endpoint serving /metrics
// (Prometheus text), /stats and /trace (JSON), and /debug/pprof/.
//
// -whatif attaches the online counterfactual profiler (internal/whatif):
// lookups are sampled spatially at -whatif-rate and drive ghost caches
// at the -whatif-capacities multiples of the real capacity (LRU at
// every multiple, importance at 1x), a threshold sweep over the -whatif-grid
// multipliers, and the Che-approximation predicted-vs-measured check.
// The report is served at /whatif on the admin endpoint (and by
// potluck-cli whatif).
//
// -data-dir enables the durable store (internal/store): every
// registration, admission, and removal is appended to a crash-safe
// segment log, snapshots are taken on -snapshot-interval, and at boot
// the cache state — entries, per-function counters, and tuner
// thresholds — is recovered before the socket opens. It subsumes the
// older -snapshot single-file mechanism, which remains for experiment
// compatibility.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/whatif"
)

func main() {
	var (
		network    = flag.String("network", "unix", `transport: "unix" or "tcp"`)
		addr       = flag.String("addr", "/tmp/potluck.sock", "socket path (unix) or host:port (tcp)")
		maxEntries = flag.Int("max-entries", 0, "entry capacity (0 = unlimited)")
		maxBytes   = flag.Int64("max-bytes", 512<<20, "byte capacity (paper's 512 MB heap bound)")
		ttl        = flag.Duration("ttl", time.Hour, "entry validity period")
		dropout    = flag.Float64("dropout", core.DefaultDropoutRate, "random-dropout probability")
		policy     = flag.String("policy", "importance", "eviction policy: importance, lru, random, fifo")
		warmup     = flag.Int("warmup", 100, "entries cached before threshold tuning activates (z)")
		tightenK   = flag.Float64("tighten-k", 4, "threshold tightening divisor (k)")
		gamma      = flag.Float64("gamma", 0.8, "threshold loosening EWMA weight (γ)")
		reputation = flag.Bool("reputation", false, "enable the cache-pollution reputation defence")
		snapshot   = flag.String("snapshot", "", "snapshot file: loaded at boot if present, written at shutdown")

		dataDir       = flag.String("data-dir", "", "durable store directory: segment log + snapshots, recovered at boot (empty = in-memory only)")
		snapInterval  = flag.Duration("snapshot-interval", time.Minute, "durable store snapshot+compaction cadence")
		fsyncPolicy   = flag.String("fsync", "interval", "durable store fsync policy: always, interval, never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync interval")
		segmentBytes  = flag.Int64("segment-bytes", 8<<20, "durable store segment roll size")

		maxConns     = flag.Int("max-conns", 0, "connection cap (0 = default 1024, -1 = unlimited)")
		maxHandlers  = flag.Int("max-handlers", 0, "concurrent request handler cap, the AppListener threadpool width (0 = default 256, -1 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-connection idle/next-request deadline (0 = default 2m, -1ns = none)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-request body read deadline (0 = default 10s, -1ns = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-reply write deadline (0 = default 10s, -1ns = none)")
		drainTimeout = flag.Duration("drain-timeout", 0, "graceful-shutdown drain budget for in-flight requests (0 = default 5s)")

		adminAddr = flag.String("admin-addr", "", "HTTP observability endpoint address, e.g. 127.0.0.1:9744 (empty = disabled)")

		nodeID       = flag.String("node-id", "", "this node's mesh identity (default: the listen address)")
		peers        = flag.String("peers", "", "mesh peers as comma-separated id=addr pairs, dialed over -network (empty = standalone)")
		replicas     = flag.Int("replicas", 2, "mesh replication factor K: owner peers per (function, keyType) namespace")
		peerTimeout  = flag.Duration("peer-timeout", 2*time.Second, "per-frame deadline on mesh peer calls")
		peerFailures = flag.Int("peer-failures", 0, "consecutive peer failures that trip its circuit breaker (0 = default 3)")
		peerCooldown = flag.Duration("peer-cooldown", 0, "breaker open duration before a half-open probe (0 = default 5s)")

		whatIf           = flag.Bool("whatif", false, "attach the counterfactual profiler (served at /whatif)")
		whatIfRate       = flag.Float64("whatif-rate", whatif.DefaultRate, "what-if spatial sample rate in (0,1]")
		whatIfCapacities = flag.String("whatif-capacities", "0.25,0.5,1,2,4", "what-if ghost-cache capacity multiples")
		whatIfGrid       = flag.String("whatif-grid", "0,0.25,0.5,0.75,1,1.5,2,3,4", "what-if threshold-sweep multipliers")

		hnswM    = flag.Int("hnsw-m", 0, "HNSW max links per node per layer (0 = default 16)")
		hnswEfc  = flag.Int("hnsw-efc", 0, "HNSW construction candidate-pool width (0 = default 128)")
		hnswEfs  = flag.Int("hnsw-efs", 0, "HNSW search candidate-pool width (0 = default 64)")
		ivfCells = flag.Int("ivf-cells", 0, "IVF coarse-quantizer cell count (0 = default 256)")
		ivfProbe = flag.Int("ivf-nprobe", 0, "IVF cells scanned per query (0 = default 16)")
		ivfTrain = flag.Int("ivf-train", 0, "IVF inserts buffered before centroid training (0 = default 4096)")
		pqSubs   = flag.Int("pq-subspaces", 0, "PQ sub-quantizer count, one code byte each (0 = derive dim/4)")
		pqTrain  = flag.Int("pq-train", 0, "PQ inserts buffered before codebook training (0 = default 1024)")
		pqRerank = flag.Int("pq-rerank", 0, "PQ extra candidates re-ranked with exact distances (0 = default 32)")
	)
	flag.Parse()

	if _, err := core.NewPolicy(core.PolicyKind(*policy)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.Config{
		MaxEntries:  *maxEntries,
		MaxBytes:    *maxBytes,
		DefaultTTL:  *ttl,
		DropoutRate: *dropout,
		Policy:      core.PolicyKind(*policy),
		Tuner:       core.TunerConfig{WarmupZ: *warmup, K: *tightenK, Gamma: *gamma},
		IndexOptions: index.Options{
			HNSW: index.HNSWConfig{M: *hnswM, EfConstruction: *hnswEfc, EfSearch: *hnswEfs},
			IVF:  index.IVFConfig{Cells: *ivfCells, NProbe: *ivfProbe, TrainAfter: *ivfTrain},
			PQ:   index.PQConfig{Subspaces: *pqSubs, TrainSize: *pqTrain, ReRank: *pqRerank},
		},
	}
	if *dropout <= 0 {
		cfg.DisableDropout = true
	}
	if *reputation {
		cfg.Reputation = &core.ReputationConfig{}
	}

	if *network == "unix" {
		// A stale socket from an unclean shutdown blocks the listener.
		os.Remove(*addr)
	}
	var tel *telemetry.Telemetry
	if *adminAddr != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
		// Key generation is the hit path's fixed cost: expose per-extractor
		// extraction latency on /metrics for any in-process extraction.
		feature.Instrument(tel.Registry)
		// Process-level health: goroutines, heap, GC pauses, build info.
		telemetry.RegisterRuntime(tel.Registry, tel.Started)
	}
	var prof *whatif.Profiler
	if *whatIf {
		caps, err := parseFloats(*whatIfCapacities, "-whatif-capacities")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		grid, err := parseFloats(*whatIfGrid, "-whatif-grid")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prof = whatif.New(whatif.Config{
			Rate:          *whatIfRate,
			Capacity:      *maxEntries,
			CapacityBytes: *maxBytes,
			Multiples:     caps,
			Grid:          grid,
			Telemetry:     tel,
		})
		cfg.Tap = prof
	}
	var durable *store.Log
	if *dataDir != "" {
		fsp, err := store.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		durable, err = store.Open(store.Config{
			Dir:              *dataDir,
			SegmentBytes:     *segmentBytes,
			Fsync:            fsp,
			FsyncInterval:    *fsyncInterval,
			SnapshotInterval: *snapInterval,
			Logf:             log.Printf,
		})
		if err != nil {
			log.Fatalf("potluckd: %v", err)
		}
		cfg.Store = durable
	}
	cache := core.New(cfg)
	if durable != nil {
		// Recover BEFORE the socket opens, so the first lookup already
		// sees the pre-crash entries and tuner thresholds.
		state, rstats, err := durable.Recover()
		if err != nil {
			log.Fatalf("potluckd: recovery: %v", err)
		}
		st, err := cache.Restore(state)
		if err != nil {
			log.Fatalf("potluckd: restore: %v", err)
		}
		log.Printf("potluckd: recovered %d entries across %d functions in %s (expired=%d skipped=%d torn-tail=%v snapshot=%v)",
			st.Entries, st.Functions, rstats.Duration.Round(time.Millisecond),
			st.Expired, st.Skipped, rstats.TornTail, rstats.SnapshotUsed)
	}
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			st, err := cache.ReadSnapshot(f)
			f.Close()
			if err != nil {
				log.Printf("potluckd: snapshot load: %v", err)
			} else {
				log.Printf("potluckd: restored %d entries across %d functions (%d skipped)",
					st.Entries, st.Functions, st.Skipped)
			}
		}
	}
	self := *nodeID
	if self == "" {
		self = *addr
	}
	srv := service.NewServerConfig(cache, service.ServerConfig{
		IdleTimeout:  *idleTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxConns:     *maxConns,
		MaxHandlers:  *maxHandlers,
		DrainTimeout: *drainTimeout,
		NodeID:       self,
	})
	srv.Logf = log.Printf

	var mesh *cluster.Mesh
	if *peers != "" {
		specs, err := parsePeers(*peers, *network)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		mesh, err = cluster.New(cluster.Config{
			NodeID:           self,
			Local:            cache,
			Peers:            specs,
			Replicas:         *replicas,
			FailureThreshold: *peerFailures,
			Cooldown:         *peerCooldown,
			AdoptTTL:         *ttl,
			Client: service.ClientConfig{
				RequestTimeout: *peerTimeout,
				DialTimeout:    *peerTimeout,
			},
			Logf: log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		srv.SetRemote(mesh)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The snapshot loop gets its own context: it must outlive the signal
	// context so the final snapshot runs after the server has drained
	// in-flight puts, not concurrently with them.
	var storeDone chan struct{}
	var storeStop context.CancelFunc
	if durable != nil {
		var storeCtx context.Context
		storeCtx, storeStop = context.WithCancel(context.Background())
		storeDone = make(chan struct{})
		go func() {
			defer close(storeDone)
			durable.Run(storeCtx, cache)
		}()
	}

	started := time.Now()
	var admin *http.Server
	if tel != nil {
		srv.Instrument(tel)
		if durable != nil {
			durable.Instrument(tel.Registry)
		}
		if mesh != nil {
			mesh.Instrument(tel)
		}
		acfg := telemetry.AdminConfig{
			Stats: func() any {
				st := srv.AdminStats(started)
				if mesh == nil {
					return st
				}
				return struct {
					service.AdminStats
					MeshPeers []cluster.PeerState `json:"meshPeers"`
				}{st, mesh.Peers()}
			},
			Explain: func(fn string, n int) (any, error) { return cache.Explain(fn, n) },
		}
		if prof != nil {
			// Left nil when the profiler is detached so /whatif serves 404
			// rather than a null report.
			acfg.WhatIf = func() any { return prof.Snapshot() }
		}
		admin = &http.Server{
			Addr:    *adminAddr,
			Handler: telemetry.AdminHandlerConfig(tel, acfg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("potluckd: admin endpoint on http://%s (/metrics /stats /trace /trace/spans /whatif /debug/explain /debug/pprof/)", *adminAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("potluckd: admin endpoint: %v", err)
			}
		}()
	}
	if mesh != nil {
		mesh.Start()
		log.Printf("potluckd: mesh node %q with %d peers (replicas=%d)", self, len(mesh.Members())-1, *replicas)
	}
	if prof != nil {
		prof.Start()
		log.Printf("potluckd: what-if profiler attached (rate=%g capacities=%s grid=%s)",
			*whatIfRate, *whatIfCapacities, *whatIfGrid)
	}
	scfg := srv.Config()
	log.Printf("potluckd: listening on %s %s (policy=%s ttl=%s dropout=%.2f max-conns=%d max-handlers=%d idle=%s)",
		*network, *addr, *policy, *ttl, *dropout, scfg.MaxConns, scfg.MaxHandlers, scfg.IdleTimeout)
	if err := srv.ListenAndServe(ctx, *network, *addr); err != nil {
		log.Fatalf("potluckd: %v", err)
	}
	srv.Close() // drain in-flight requests before snapshotting
	if mesh != nil {
		mesh.Close()
	}
	if prof != nil {
		prof.Close()
	}
	if durable != nil {
		storeStop() // Run takes its final snapshot on the way out
		<-storeDone
		if err := durable.Close(); err != nil {
			log.Printf("potluckd: durable store close: %v", err)
		}
	}
	if admin != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(sctx)
		scancel()
	}
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Printf("potluckd: snapshot save: %v", err)
		} else {
			st, err := cache.WriteSnapshot(f)
			f.Close()
			if err != nil {
				log.Printf("potluckd: snapshot save: %v", err)
			} else {
				log.Printf("potluckd: saved %d entries (%d skipped)", st.Entries, st.Skipped)
			}
		}
	}
	log.Printf("potluckd: shut down")
}

// parseFloats parses a comma-separated list of non-negative floats, as
// used by the -whatif-capacities and -whatif-grid flags.
func parseFloats(s, flagName string) ([]float64, error) {
	var out []float64
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		v, err := strconv.ParseFloat(entry, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("potluckd: bad %s entry %q, want a non-negative number", flagName, entry)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("potluckd: %s %q contains no entries", flagName, s)
	}
	return out, nil
}

// parsePeers parses the -peers flag: comma-separated id=addr pairs, all
// dialed over the daemon's own transport.
func parsePeers(s, network string) ([]cluster.PeerSpec, error) {
	var out []cluster.PeerSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("potluckd: bad -peers entry %q, want id=addr", entry)
		}
		out = append(out, cluster.PeerSpec{ID: id, Network: network, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("potluckd: -peers %q contains no entries", s)
	}
	return out, nil
}
